// SessionScheduler: host-scale multiplexing of many stations' streaming
// sessions. The load-bearing properties:
//
//   1. Routing a station's stream through the scheduler changes nothing:
//      each sink receives exactly the ensembles EnsembleExtractor::extract
//      produces for that station's signal, bit-identically, regardless of
//      worker count or how stations interleave.
//   2. The ingest queue bound is hard, and drop-oldest loss accounting is
//      exact: pushed == consumed + dropped + queued at every instant.
//   3. Live reconfigure through the scheduler equals reconfiguring a
//      hand-pumped session at the same stream position.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "core/extractor.hpp"
#include "core/session_scheduler.hpp"
#include "core/stream_session.hpp"
#include "river/sample_io.hpp"
#include "test_support.hpp"

namespace core = dynriver::core;
namespace river = dynriver::river;
namespace testsupport = dynriver::testsupport;

namespace {

/// Parameters scaled down so short synthetic signals exercise every state
/// transition (trigger, hold, merge, floor) quickly.
core::PipelineParams small_params() {
  core::PipelineParams params;
  params.anomaly = {.window = 50, .alphabet = 6, .level = 2,
                    .ma_window = 400, .frame = 8};
  params.trigger_min_baseline = 1500;
  params.trigger_hold_samples = 300;
  params.min_ensemble_samples = 600;
  params.merge_gap_samples = 2000;
  return params;
}

std::vector<float> random_signal_with_events(std::size_t n, unsigned seed) {
  auto xs = testsupport::noise_with_bursts(n, n / 4, n / 8, seed);
  const auto second = testsupport::noise_with_bursts(n, (3 * n) / 5, n / 10,
                                                     seed + 1);
  for (std::size_t i = (3 * n) / 5; i < std::min(n, (3 * n) / 5 + n / 10); ++i) {
    xs[i] += second[i] * 0.5F;
  }
  return xs;
}

void expect_same_ensembles(const std::vector<river::Ensemble>& got,
                           const std::vector<river::Ensemble>& want,
                           const std::string& station) {
  ASSERT_EQ(got.size(), want.size()) << station;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].start_sample, want[i].start_sample)
        << station << " ensemble " << i;
    ASSERT_EQ(got[i].samples, want[i].samples) << station << " ensemble " << i;
  }
}

}  // namespace

TEST(SessionScheduler, MultiStationBitIdenticalToDirectExtraction) {
  const auto params = small_params();
  const core::EnsembleExtractor extractor(params);

  constexpr std::size_t kStations = 5;
  std::vector<std::vector<float>> signals;
  std::vector<std::vector<river::Ensemble>> want;
  for (std::size_t s = 0; s < kStations; ++s) {
    signals.push_back(random_signal_with_events(60000, 100 + unsigned(s)));
    want.push_back(extractor.extract(signals.back()).ensembles);
  }
  ASSERT_TRUE(std::any_of(want.begin(), want.end(),
                          [](const auto& w) { return !w.empty(); }));

  core::SchedulerOptions options;
  options.threads = 2;  // exercise the pool; per-station order is FIFO anyway
  options.quantum_samples = 1024;
  core::SessionScheduler scheduler(options);

  std::vector<std::shared_ptr<river::CollectingEnsembleSink>> sinks;
  for (std::size_t s = 0; s < kStations; ++s) {
    core::StationConfig config;
    config.params = params;
    config.queue_capacity_samples = 4096;
    config.read_chunk_samples = 512;
    auto sink = std::make_shared<river::CollectingEnsembleSink>();
    sinks.push_back(sink);
    scheduler.add_station(
        "st" + std::to_string(s),
        std::make_shared<river::BufferSource>(signals[s], params.sample_rate),
        sink, config);
  }
  ASSERT_EQ(scheduler.station_count(), kStations);
  scheduler.run();

  const auto stats = scheduler.stats();
  for (std::size_t s = 0; s < kStations; ++s) {
    expect_same_ensembles(sinks[s]->ensembles, want[s], stats.stations[s].name);
    EXPECT_TRUE(stats.stations[s].finished);
    EXPECT_EQ(stats.stations[s].samples_in, signals[s].size());
    EXPECT_EQ(stats.stations[s].samples_consumed, signals[s].size());
    EXPECT_EQ(stats.stations[s].samples_dropped, 0U);
    EXPECT_EQ(stats.stations[s].queued_samples, 0U);
    EXPECT_EQ(stats.stations[s].ensembles_out, want[s].size());
  }
  EXPECT_EQ(stats.total_samples_dropped(), 0U);
  EXPECT_GT(stats.rounds, 0U);
}

TEST(SessionScheduler, DropOldestAccountingIsExact) {
  const auto params = small_params();
  constexpr std::size_t kChunk = 600;
  constexpr std::size_t kCapacityChunks = 4;
  constexpr std::size_t kPushed = 10;

  core::SchedulerOptions options;
  options.threads = 1;  // deterministic manual drive
  core::SessionScheduler scheduler(options);

  core::StationConfig config;
  config.params = params;
  config.policy = core::BackpressurePolicy::kDropOldest;
  config.queue_capacity_samples = kCapacityChunks * kChunk;
  auto sink = std::make_shared<river::CollectingEnsembleSink>();
  const auto id = scheduler.add_station("lossy", sink, config);

  // No processing between pushes: chunks 0..5 must be evicted, 6..9 kept.
  const auto xs = random_signal_with_events(kPushed * kChunk, 7);
  std::size_t dropped = 0;
  for (std::size_t c = 0; c < kPushed; ++c) {
    dropped += scheduler.push(
        id, std::span<const float>(xs.data() + c * kChunk, kChunk));
  }
  EXPECT_EQ(dropped, (kPushed - kCapacityChunks) * kChunk);

  auto stats = scheduler.stats();
  EXPECT_EQ(stats.stations[0].samples_in, kPushed * kChunk);
  EXPECT_EQ(stats.stations[0].samples_dropped, dropped);
  EXPECT_EQ(stats.stations[0].queued_samples, kCapacityChunks * kChunk);
  // pushed == consumed + dropped + queued, exactly.
  EXPECT_EQ(stats.stations[0].samples_in,
            stats.stations[0].samples_consumed +
                stats.stations[0].samples_dropped +
                stats.stations[0].queued_samples);

  scheduler.close_station(id);
  while (scheduler.process_available()) {
  }
  stats = scheduler.stats();
  EXPECT_TRUE(stats.stations[0].finished);
  EXPECT_EQ(stats.stations[0].queued_samples, 0U);
  EXPECT_EQ(stats.stations[0].samples_consumed, kCapacityChunks * kChunk);
  // The session saw exactly the surviving suffix, in order.
  EXPECT_EQ(scheduler.session(id).samples_consumed(), kCapacityChunks * kChunk);
}

TEST(SessionScheduler, BlockPolicyIsLosslessAndBoundsTheQueue) {
  const auto params = small_params();
  constexpr std::size_t kChunk = 512;
  constexpr std::size_t kCapacity = 2048;

  core::SchedulerOptions options;
  options.threads = 1;
  options.quantum_samples = 700;
  options.on_round = [&](const core::SchedulerStats& snapshot) {
    for (const auto& st : snapshot.stations) {
      EXPECT_LE(st.queued_samples, kCapacity);
      EXPECT_EQ(st.samples_dropped, 0U);
    }
  };
  core::SessionScheduler scheduler(std::move(options));

  core::StationConfig config;
  config.params = params;
  config.policy = core::BackpressurePolicy::kBlock;
  config.queue_capacity_samples = kCapacity;
  auto sink = std::make_shared<river::CollectingEnsembleSink>();
  const auto id = scheduler.add_station("lossless", sink, config);

  const auto xs = random_signal_with_events(60000, 21);
  const auto want = core::EnsembleExtractor(params).extract(xs);

  // The pusher blocks whenever the queue is full; the main thread drains.
  std::thread pusher([&] {
    for (std::size_t pos = 0; pos < xs.size(); pos += kChunk) {
      const std::size_t n = std::min(kChunk, xs.size() - pos);
      const std::size_t d =
          scheduler.push(id, std::span<const float>(xs.data() + pos, n));
      EXPECT_EQ(d, 0U);
    }
    scheduler.close_station(id);
  });
  while (scheduler.process_available()) {
    std::this_thread::yield();
  }
  pusher.join();

  const auto stats = scheduler.stats();
  EXPECT_EQ(stats.stations[0].samples_in, xs.size());
  EXPECT_EQ(stats.stations[0].samples_consumed, xs.size());
  EXPECT_EQ(stats.stations[0].samples_dropped, 0U);
  expect_same_ensembles(sink->ensembles, want.ensembles, "lossless");
}

TEST(SessionScheduler, ReconfigureMatchesHandPumpedSession) {
  const auto p1 = small_params();
  auto p2 = p1;
  p2.merge_gap_samples = 900;
  p2.min_ensemble_samples = 800;
  p2.trigger_hold_samples = 500;
  ASSERT_TRUE(core::reconfigure_compatible(p1, p2));

  const auto xs = random_signal_with_events(60000, 33);
  constexpr std::size_t kSplit = 20000;  // reconfigure lands mid-stream
  constexpr std::size_t kChunk = 500;

  // Reference: a hand-pumped session reconfigured at the same position.
  core::StreamSession reference(p1);
  std::vector<river::Ensemble> want;
  for (std::size_t pos = 0; pos < xs.size(); pos += kChunk) {
    if (pos == kSplit) reference.reconfigure(p2);
    reference.push(std::span<const float>(xs.data() + pos,
                                          std::min(kChunk, xs.size() - pos)));
    for (auto& e : reference.drain()) want.push_back(std::move(e));
  }
  for (auto& e : reference.finish()) want.push_back(std::move(e));

  core::SchedulerOptions options;
  options.threads = 1;
  core::SessionScheduler scheduler(options);
  core::StationConfig config;
  config.params = p1;
  config.queue_capacity_samples = 4 * kChunk;
  auto sink = std::make_shared<river::CollectingEnsembleSink>();
  const auto id = scheduler.add_station("tuned", sink, config);

  // Drain after every push so the reconfigure lands at exactly kSplit.
  for (std::size_t pos = 0; pos < xs.size(); pos += kChunk) {
    if (pos == kSplit) scheduler.reconfigure(id, p2);
    scheduler.push(id, std::span<const float>(xs.data() + pos,
                                              std::min(kChunk, xs.size() - pos)));
    (void)scheduler.process_available();
  }
  scheduler.close_station(id);
  while (scheduler.process_available()) {
  }

  EXPECT_EQ(scheduler.session(id).params().merge_gap_samples,
            p2.merge_gap_samples);
  expect_same_ensembles(sink->ensembles, want, "tuned");
}

TEST(SessionScheduler, WeightedQuantaSplitServiceProportionally) {
  // Weighted DRR: a station with twice the per-round quantum drains twice
  // the samples per round while both stations stay backlogged. threads=1
  // and manual process_available() pumping make every round deterministic:
  // each round adds the station's quantum to its deficit and drains whole
  // queued chunks while credit lasts, so with chunk-aligned quanta the
  // consumption ratio is exactly the quantum ratio — not approximately.
  const auto params = small_params();
  constexpr std::size_t kChunk = 600;
  constexpr std::size_t kChunks = 40;  // 24000-sample backlog per station

  core::SchedulerOptions options;
  options.threads = 1;
  options.quantum_samples = 1200;  // station "light" adopts this default
  core::SessionScheduler scheduler(options);

  core::StationConfig heavy_cfg;
  heavy_cfg.params = params;
  heavy_cfg.queue_capacity_samples = kChunks * kChunk;
  heavy_cfg.quantum_samples = 2400;  // 2x the scheduler-wide quantum
  core::StationConfig light_cfg = heavy_cfg;
  light_cfg.quantum_samples = 0;  // adopt options_.quantum_samples (1200)

  auto heavy_sink = std::make_shared<river::CollectingEnsembleSink>();
  auto light_sink = std::make_shared<river::CollectingEnsembleSink>();
  const auto heavy = scheduler.add_station("heavy", heavy_sink, heavy_cfg);
  const auto light = scheduler.add_station("light", light_sink, light_cfg);

  const auto xs = random_signal_with_events(kChunks * kChunk, 21);
  for (std::size_t c = 0; c < kChunks; ++c) {
    const std::span<const float> chunk(xs.data() + c * kChunk, kChunk);
    EXPECT_EQ(scheduler.push(heavy, chunk), 0U);
    EXPECT_EQ(scheduler.push(light, chunk), 0U);
  }

  // Five rounds: heavy earns 5*2400 = 12000 credit, light 5*1200 = 6000 —
  // both far below the 24000 backlog, so neither queue drains and the
  // deficit never resets.
  for (int round = 0; round < 5; ++round) {
    ASSERT_TRUE(scheduler.process_available());
  }

  const auto stats = scheduler.stats();
  std::size_t heavy_consumed = 0;
  std::size_t light_consumed = 0;
  for (const auto& st : stats.stations) {
    if (st.name == "heavy") heavy_consumed = st.samples_consumed;
    if (st.name == "light") light_consumed = st.samples_consumed;
  }
  EXPECT_EQ(heavy_consumed, 12000U);
  EXPECT_EQ(light_consumed, 6000U);
  EXPECT_EQ(heavy_consumed, 2 * light_consumed);

  // Draining to completion still processes every pushed sample on both —
  // weighting shifts service order, never total service.
  scheduler.close_station(heavy);
  scheduler.close_station(light);
  while (scheduler.process_available()) {
  }
  const auto final_stats = scheduler.stats();
  for (const auto& st : final_stats.stations) {
    EXPECT_EQ(st.samples_consumed, kChunks * kChunk) << st.name;
    EXPECT_TRUE(st.finished) << st.name;
  }
}
