// Overflow-checked size arithmetic (common/checked.hpp): the primitives
// every untrusted-byte decoder routes its length math through. Boundary
// cases matter more than happy paths here — an off-by-one at the wrap point
// is exactly the bug class the helpers exist to stop.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <stdexcept>

#include "common/checked.hpp"
#include "river/wire.hpp"

namespace checked = dynriver::common::checked;
using dynriver::river::WireError;

namespace {

constexpr auto kMax64 = std::numeric_limits<std::uint64_t>::max();
constexpr auto kMaxSize = std::numeric_limits<std::size_t>::max();

class CustomError : public std::runtime_error {
 public:
  explicit CustomError(const std::string& what) : std::runtime_error(what) {}
};

}  // namespace

TEST(Checked, AddInRange) {
  EXPECT_EQ((checked::add<WireError>(std::uint64_t{2}, std::uint64_t{3}, "x")),
            5U);
  EXPECT_EQ((checked::add<WireError>(kMax64 - 1, std::uint64_t{1}, "x")),
            kMax64);
  EXPECT_EQ((checked::add<WireError>(std::uint64_t{0}, std::uint64_t{0}, "x")),
            0U);
}

TEST(Checked, AddAtTheWrapBoundary) {
  EXPECT_THROW((void)checked::add<WireError>(kMax64, std::uint64_t{1}, "x"),
               WireError);
  EXPECT_THROW(
      (void)checked::add<WireError>(kMax64 / 2 + 1, kMax64 / 2 + 1, "x"),
      WireError);
  // One below the boundary still fits.
  EXPECT_EQ((checked::add<WireError>(kMax64 / 2, kMax64 / 2 + 1, "x")), kMax64);
}

TEST(Checked, MulInRange) {
  EXPECT_EQ((checked::mul<WireError>(std::size_t{1} << 20, std::size_t{4},
                                     "x")),
            std::size_t{1} << 22);
  EXPECT_EQ((checked::mul<WireError>(kMaxSize, std::size_t{1}, "x")), kMaxSize);
  EXPECT_EQ((checked::mul<WireError>(kMaxSize, std::size_t{0}, "x")), 0U);
}

TEST(Checked, MulAtTheWrapBoundary) {
  // The classic decoder bug: count * sizeof(elem) wrapping to something
  // small. 2^62 * 4 wraps to 0 in u64 — the exact shape of the fuzz-found
  // packed-count overflow (see fuzz/corpus/wire_decode).
  EXPECT_THROW((void)checked::mul<WireError>(std::uint64_t{1} << 62,
                                             std::uint64_t{4}, "x"),
               WireError);
  EXPECT_THROW((void)checked::mul<WireError>(kMax64 / 2, std::uint64_t{3},
                                             "x"),
               WireError);
  EXPECT_EQ((checked::mul<WireError>(kMax64 / 4, std::uint64_t{4}, "x")),
            kMax64 - 3);
}

TEST(Checked, NarrowInRange) {
  EXPECT_EQ((checked::narrow<std::uint16_t, WireError>(65535, "x")), 65535U);
  EXPECT_EQ((checked::narrow<std::size_t, WireError>(std::int64_t{0}, "x")),
            0U);
  EXPECT_EQ((checked::narrow<std::uint8_t, WireError>(std::uint64_t{255},
                                                      "x")),
            255U);
}

TEST(Checked, NarrowRejectsTooLargeAndNegative) {
  EXPECT_THROW((void)(checked::narrow<std::uint16_t, WireError>(65536, "x")),
               WireError);
  EXPECT_THROW(
      (void)(checked::narrow<std::size_t, WireError>(std::int64_t{-1}, "x")),
      WireError);
  EXPECT_THROW(
      (void)(checked::narrow<std::uint8_t, WireError>(std::uint64_t{256},
                                                      "x")),
      WireError);
}

TEST(Checked, ThrowsTheRequestedExceptionFamilyWithTheMessage) {
  // The exception type is a template parameter so each decoder's existing
  // catch sites keep working; the message must survive verbatim.
  try {
    (void)checked::mul<CustomError>(kMax64, kMax64, "count overflows frame");
    FAIL() << "no throw";
  } catch (const CustomError& e) {
    EXPECT_STREQ(e.what(), "count overflows frame");
  }
  // And a WireError thrown here is catchable as the decoder's base family.
  try {
    (void)checked::add<WireError>(kMax64, kMax64, "sum overflows");
    FAIL() << "no throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "sum overflows");
  }
}
