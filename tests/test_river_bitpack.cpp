// Bit-packing codec properties: bit-exact round-trips across sizes and value
// shapes (including NaN, denormals, -0.0), strict rejection of truncated and
// structurally invalid streams, and the compression floor on realistic
// (PCM16-quantized) station audio.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <random>
#include <vector>

#include "river/bitpack.hpp"
#include "synth/station.hpp"

namespace river = dynriver::river;
namespace bitpack = dynriver::river::bitpack;
namespace synth = dynriver::synth;

namespace {

/// The PCM16 grid the WAV/ADC path produces: n/32768 with n = round(v*32767).
float quantize_pcm16(float v) {
  const float c = std::clamp(v, -1.0f, 1.0f);
  return static_cast<float>(std::lround(c * 32767.0f)) / 32768.0f;
}

void expect_bit_identical(const std::vector<float>& a,
                          const std::vector<float>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::uint32_t ab = 0;
    std::uint32_t bb = 0;
    std::memcpy(&ab, &a[i], 4);
    std::memcpy(&bb, &b[i], 4);
    ASSERT_EQ(ab, bb) << "sample " << i;
  }
}

std::vector<std::uint8_t> pack(const std::vector<float>& values) {
  std::vector<std::uint8_t> packed;
  const std::size_t appended = bitpack::pack_floats(values, packed);
  EXPECT_EQ(appended, packed.size());
  return packed;
}

void roundtrip(const std::vector<float>& values) {
  const auto packed = pack(values);
  std::vector<float> out(values.size());
  const std::size_t used =
      bitpack::unpack_floats(packed.data(), packed.size(), out);
  EXPECT_EQ(used, packed.size());
  // The structural walk must agree with the value decode byte for byte.
  EXPECT_EQ(bitpack::packed_stream_bytes(packed.data(), packed.size(),
                                         values.size()),
            packed.size());
  expect_bit_identical(values, out);
}

/// Every size from 1..257 plus block-boundary and larger shapes: the codec's
/// block structure (128 values) makes off-by-ones cluster at these sizes.
std::vector<std::size_t> interesting_sizes() {
  std::vector<std::size_t> sizes;
  for (std::size_t n = 1; n <= 257; ++n) sizes.push_back(n);
  for (const std::size_t n : {509u, 1021u, 1024u, 4096u}) sizes.push_back(n);
  return sizes;
}

}  // namespace

TEST(Bitpack, RoundTripConstantEverySize) {
  for (const std::size_t n : interesting_sizes()) {
    roundtrip(std::vector<float>(n, 0.25f));
  }
}

TEST(Bitpack, RoundTripQuantizedRampEverySize) {
  for (const std::size_t n : interesting_sizes()) {
    std::vector<float> v(n);
    for (std::size_t i = 0; i < n; ++i) {
      v[i] = quantize_pcm16(static_cast<float>(i % 701) / 700.0f - 0.5f);
    }
    roundtrip(v);
  }
}

TEST(Bitpack, RoundTripQuantizedNoiseEverySize) {
  std::mt19937 rng(7);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  for (const std::size_t n : interesting_sizes()) {
    std::vector<float> v(n);
    for (auto& x : v) x = quantize_pcm16(dist(rng));
    roundtrip(v);
  }
}

TEST(Bitpack, RoundTripFullPrecisionNoiseEverySize) {
  std::mt19937 rng(11);
  std::uniform_real_distribution<float> dist(-2.0f, 2.0f);
  for (const std::size_t n : interesting_sizes()) {
    std::vector<float> v(n);
    for (auto& x : v) x = dist(rng);  // not on the PCM16 grid: xor path
    roundtrip(v);
  }
}

TEST(Bitpack, RoundTripSpecialValues) {
  const std::vector<float> specials = {
      0.0f,
      -0.0f,
      1.0f,
      -1.0f,
      std::numeric_limits<float>::quiet_NaN(),
      -std::numeric_limits<float>::quiet_NaN(),
      std::numeric_limits<float>::infinity(),
      -std::numeric_limits<float>::infinity(),
      std::numeric_limits<float>::denorm_min(),
      -std::numeric_limits<float>::denorm_min(),
      1e-42f,  // denormal
      std::numeric_limits<float>::max(),
      std::numeric_limits<float>::lowest(),
      std::nextafterf(1.0f, 2.0f),
  };
  roundtrip(specials);
  // Repeat to cross a block boundary with specials on both sides.
  std::vector<float> many;
  while (many.size() < 300) {
    many.insert(many.end(), specials.begin(), specials.end());
  }
  roundtrip(many);
}

TEST(Bitpack, ModeSelection) {
  // PCM16-grid values take the delta path.
  std::vector<float> quantized(200);
  for (std::size_t i = 0; i < quantized.size(); ++i) {
    quantized[i] = quantize_pcm16(std::sin(static_cast<float>(i) * 0.1f));
  }
  EXPECT_EQ(pack(quantized)[0], bitpack::kModeI16Delta);

  // -0.0 is numerically 0/32768 but not bitwise: the delta path would
  // canonicalize it, so the encoder must pick another mode (xor when it
  // compresses, raw otherwise) and stay bit-exact.
  std::vector<float> with_neg_zero = quantized;
  with_neg_zero[100] = -0.0f;
  EXPECT_NE(pack(with_neg_zero)[0], bitpack::kModeI16Delta);
  roundtrip(with_neg_zero);

  // +1.0 has no i16 representation (32768 overflows): off the delta path too.
  std::vector<float> with_one = quantized;
  with_one[50] = 1.0f;
  EXPECT_NE(pack(with_one)[0], bitpack::kModeI16Delta);
  roundtrip(with_one);

  // Uncorrelated bit patterns pack to >= 32 bits/value under xor, so the
  // encoder must fall back to raw rather than inflate.
  std::mt19937 rng(3);
  std::vector<float> incompressible(256);
  for (auto& x : incompressible) {
    const auto bits = static_cast<std::uint32_t>(rng());
    float f;
    std::memcpy(&f, &bits, 4);
    if (std::isnan(f)) continue;  // keep it simple: any value works
    x = f;
  }
  const auto packed = pack(incompressible);
  EXPECT_EQ(packed[0], bitpack::kModeRaw);
  EXPECT_EQ(packed.size(), 1 + 4 * incompressible.size());
  roundtrip(incompressible);
}

TEST(Bitpack, ConstantRunsCompressMassively) {
  const std::vector<float> v(4096, 0.125f);
  const auto packed = pack(v);
  // The first block pays the block's max width for the initial delta
  // (14 bits x 128 values); every later block is a single width-0 byte.
  // 1 + (1 + 224) + 31 * 1 = 257 bytes for 16 KiB of raw floats.
  EXPECT_LT(packed.size(), 2 * 4 * v.size() / 100);
}

TEST(Bitpack, EveryTruncatedPrefixRejected) {
  std::mt19937 rng(23);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  std::vector<float> v(300);
  for (auto& x : v) x = quantize_pcm16(dist(rng));
  const auto packed = pack(v);
  std::vector<float> out(v.size());
  for (std::size_t cut = 0; cut < packed.size(); ++cut) {
    EXPECT_THROW((void)bitpack::unpack_floats(packed.data(), cut, out),
                 river::WireTruncated)
        << "prefix " << cut;
    EXPECT_THROW((void)bitpack::packed_stream_bytes(packed.data(), cut,
                                                    v.size()),
                 river::WireTruncated)
        << "prefix " << cut;
  }
}

TEST(Bitpack, InvalidStructureRejected) {
  std::vector<float> v(10, 0.5f);
  auto packed = pack(v);
  std::vector<float> out(v.size());

  auto bad_mode = packed;
  bad_mode[0] = 7;
  EXPECT_THROW((void)bitpack::unpack_floats(bad_mode.data(), bad_mode.size(),
                                            out),
               river::WireError);

  auto bad_width = packed;
  bad_width[1] = 31;  // i16 mode allows at most 17 bits
  EXPECT_THROW((void)bitpack::unpack_floats(bad_width.data(), bad_width.size(),
                                            out),
               river::WireError);

  // A delta walking outside [-32768, 32767] is structurally invalid: mode 1,
  // one 17-bit value encoding zigzag(+40000).
  std::vector<std::uint8_t> escape = {bitpack::kModeI16Delta, 17};
  const std::uint32_t zz = (40000u << 1);  // zigzag of +40000
  std::uint32_t acc = zz;
  for (int i = 0; i < 3; ++i) {
    escape.push_back(static_cast<std::uint8_t>(acc & 0xFFu));
    acc >>= 8;
  }
  std::vector<float> one(1);
  EXPECT_THROW((void)bitpack::unpack_floats(escape.data(), escape.size(), one),
               river::WireError);
}

TEST(Bitpack, StationClipCompressesAtLeastThreefold) {
  // The acceptance floor: a realistic station clip, quantized through the
  // PCM16 grid every ADC/WAV sample lives on, must pack >= 3x smaller —
  // both as one stream and chunked into archiver-sized (900-sample) records.
  synth::SensorStation station({}, 77);
  const auto clip = station.record_clip(
      {synth::SpeciesId::kAMGO, synth::SpeciesId::kBCCH});
  std::vector<float> q(clip.clip.samples.size());
  for (std::size_t i = 0; i < q.size(); ++i) {
    q[i] = quantize_pcm16(clip.clip.samples[i]);
  }

  roundtrip(q);
  const auto whole = pack(q);
  EXPECT_GE(4 * q.size(), 3 * whole.size())
      << "whole-clip ratio " << static_cast<double>(4 * q.size()) /
                                    static_cast<double>(whole.size());

  std::size_t chunked = 0;
  for (std::size_t off = 0; off < q.size(); off += 900) {
    const std::size_t n = std::min<std::size_t>(900, q.size() - off);
    std::vector<std::uint8_t> p;
    chunked += bitpack::pack_floats(std::span<const float>(q.data() + off, n),
                                    p);
  }
  EXPECT_GE(4 * q.size(), 3 * chunked)
      << "per-record ratio " << static_cast<double>(4 * q.size()) /
                                    static_cast<double>(chunked);
}
