// End-to-end extraction on synthetic clips: planted vocalizations are found,
// boundaries are sane, data reduction is near the paper's ~80%, and the
// feature pipeline produces the paper's pattern geometry (1050/105 features,
// 0.125 s cadence).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/contracts.hpp"
#include "core/extractor.hpp"
#include "core/features.hpp"
#include "core/params.hpp"
#include "synth/station.hpp"
#include "test_support.hpp"

namespace core = dynriver::core;
namespace synth = dynriver::synth;

namespace {
core::PipelineParams default_params() {
  core::PipelineParams p;
  return p;
}

synth::ClipRecording make_clip(std::uint64_t seed,
                               const std::vector<synth::SpeciesId>& singers) {
  // Keep the station default distractor probability: the extractor must
  // tolerate the occasional non-bird transient.
  return dynriver::testsupport::record_station_clip(seed, singers, 0.15);
}
}  // namespace

TEST(PipelineParams, PaperGeometry) {
  const auto p = default_params();
  EXPECT_EQ(p.cutout_lo_bin(), 50u);
  EXPECT_EQ(p.cutout_hi_bin(), 400u);
  EXPECT_EQ(p.bins_per_record(), 350u);
  EXPECT_EQ(p.features_per_record(), 35u);   // PAA x10
  EXPECT_EQ(p.features_per_pattern(), 105u); // 3 records merged
  EXPECT_NEAR(p.pattern_seconds(), 0.125, 1e-9);

  core::PipelineParams raw = p;
  raw.use_paa = false;
  EXPECT_EQ(raw.features_per_pattern(), 1050u);
}

TEST(PipelineParams, ValidationCatchesNonsense) {
  auto p = default_params();
  p.cutout_hi_hz = 20000.0;  // above Nyquist
  EXPECT_THROW(p.validate(), dynriver::ContractViolation);

  p = default_params();
  p.dft_size = 100;  // smaller than record
  EXPECT_THROW(p.validate(), dynriver::ContractViolation);
}

TEST(EnsembleExtractor, FindsPlantedVocalizations) {
  const auto clip = make_clip(21, {synth::SpeciesId::kNOCA,
                                   synth::SpeciesId::kNOCA});
  const core::EnsembleExtractor extractor(default_params());
  const auto result = extractor.extract(clip.clip.samples);

  // Every planted song should be covered by some extracted ensemble.
  for (const auto& t : clip.truth) {
    bool found = false;
    for (const auto& e : result.ensembles) {
      if (synth::intervals_overlap(e.start_sample, e.end_sample(),
                                   t.start_sample, t.end_sample(), 0.25)) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "song at " << t.start_sample << " not extracted";
  }
}

TEST(EnsembleExtractor, SilenceYieldsLittle) {
  synth::StationParams sp;
  sp.distractor_probability = 0.0;
  synth::SensorStation station(sp, 22);
  const auto clip = station.record_silence();
  const core::EnsembleExtractor extractor(default_params());
  const auto result = extractor.extract(clip.clip.samples);
  // Background-only clips should keep almost nothing.
  EXPECT_LT(static_cast<double>(result.retained_samples()),
            0.1 * static_cast<double>(clip.clip.samples.size()));
}

TEST(EnsembleExtractor, DataReductionNearPaper) {
  // The paper reports 80.6% reduction. With ~2 songs per 30 s clip the
  // extracted fraction should land well above 50% reduction and below 99%.
  const core::EnsembleExtractor extractor(default_params());
  std::size_t total = 0;
  std::size_t kept = 0;
  for (std::uint64_t seed = 30; seed < 36; ++seed) {
    const auto clip = make_clip(seed, {synth::SpeciesId::kBCCH,
                                       synth::SpeciesId::kMODO});
    const auto result = extractor.extract(clip.clip.samples);
    total += clip.clip.samples.size();
    kept += result.retained_samples();
  }
  const double reduction =
      1.0 - static_cast<double>(kept) / static_cast<double>(total);
  EXPECT_GT(reduction, 0.5);
  EXPECT_LT(reduction, 0.99);
}

TEST(EnsembleExtractor, KeepSignalsProducesAlignedSeries) {
  const auto clip = make_clip(41, {synth::SpeciesId::kRWBL});
  const core::EnsembleExtractor extractor(default_params());
  const auto result = extractor.extract(clip.clip.samples, /*keep_signals=*/true);
  EXPECT_EQ(result.scores.size(), clip.clip.samples.size());
  EXPECT_EQ(result.trigger.size(), clip.clip.samples.size());
  ASSERT_FALSE(result.ensembles.empty());

  // Ensemble boundaries are triggered samples; interiors may bridge short
  // untriggered gaps (merge_gap_samples), but each ensemble must be
  // substantially triggered and every long triggered run must be kept.
  for (const auto& e : result.ensembles) {
    EXPECT_EQ(result.trigger[e.start_sample], 1);
    EXPECT_EQ(result.trigger[e.end_sample() - 1], 1);
    std::size_t triggered = 0;
    for (std::size_t i = e.start_sample; i < e.end_sample(); ++i) {
      triggered += result.trigger[i];
    }
    EXPECT_GT(static_cast<double>(triggered) / static_cast<double>(e.length()),
              0.3);
  }
}

TEST(EnsembleExtractor, EnsemblesAreDisjointAndOrdered) {
  const auto clip = make_clip(42, {synth::SpeciesId::kTUTI,
                                   synth::SpeciesId::kWBNU});
  const core::EnsembleExtractor extractor(default_params());
  const auto result = extractor.extract(clip.clip.samples);
  for (std::size_t i = 1; i < result.ensembles.size(); ++i) {
    EXPECT_GE(result.ensembles[i].start_sample,
              result.ensembles[i - 1].end_sample());
  }
  for (const auto& e : result.ensembles) {
    EXPECT_GE(e.length(), default_params().min_ensemble_samples);
    EXPECT_LE(e.end_sample(), clip.clip.samples.size());
  }
}

TEST(EnsembleExtractor, EnsembleSamplesMatchOriginalSignal) {
  const auto clip = make_clip(43, {synth::SpeciesId::kBLJA});
  const core::EnsembleExtractor extractor(default_params());
  const auto result = extractor.extract(clip.clip.samples);
  ASSERT_FALSE(result.ensembles.empty());
  for (const auto& e : result.ensembles) {
    for (std::size_t i = 0; i < e.samples.size(); ++i) {
      EXPECT_FLOAT_EQ(e.samples[i], clip.clip.samples[e.start_sample + i]);
    }
  }
}

TEST(FeatureExtractor, PatternGeometry) {
  const core::FeatureExtractor fx(default_params());
  // A 1-second ensemble at 21.6 kHz = 24 records -> with reslice 47 sliced
  // records -> floor((47-3)/6)+1 = 8 patterns of 105 features.
  std::vector<float> ensemble(21600);
  for (std::size_t i = 0; i < ensemble.size(); ++i) {
    ensemble[i] = static_cast<float>(std::sin(0.9 * static_cast<double>(i)));
  }
  const auto patterns = fx.patterns(ensemble);
  ASSERT_FALSE(patterns.empty());
  for (const auto& p : patterns) {
    EXPECT_EQ(p.size(), 105u);
  }
  EXPECT_NEAR(static_cast<double>(patterns.size()), 8.0, 1.0);
}

TEST(FeatureExtractor, RawModeProduces1050Features) {
  auto params = default_params();
  params.use_paa = false;
  const core::FeatureExtractor fx(params);
  std::vector<float> ensemble(21600, 0.1F);
  const auto patterns = fx.patterns(ensemble);
  ASSERT_FALSE(patterns.empty());
  EXPECT_EQ(patterns.front().size(), 1050u);
}

TEST(FeatureExtractor, TooShortEnsembleYieldsNoPatterns) {
  const core::FeatureExtractor fx(default_params());
  std::vector<float> tiny(400, 0.5F);
  EXPECT_TRUE(fx.patterns(tiny).empty());
}

TEST(FeatureExtractor, SpectrumPeaksInCorrectPaaBucket) {
  // A pure 3 kHz tone: bin (3000-1200)/24 = 75 of the cutout band, PAA
  // bucket 7 of 35 per record.
  auto params = default_params();
  const core::FeatureExtractor fx(params);
  std::vector<float> record(900);
  for (std::size_t i = 0; i < record.size(); ++i) {
    record[i] = static_cast<float>(std::sin(
        2.0 * std::numbers::pi * 3000.0 * static_cast<double>(i) / params.sample_rate));
  }
  const auto spectrum = fx.record_spectrum(record);
  ASSERT_EQ(spectrum.size(), 35u);
  const auto peak =
      std::distance(spectrum.begin(),
                    std::max_element(spectrum.begin(), spectrum.end()));
  EXPECT_EQ(peak, 7);
}

TEST(SpectralEngineBatch, BatchBitIdenticalToSingle) {
  const core::SpectralEngine engine(dynriver::dsp::WindowKind::kWelch, 900);
  constexpr std::size_t kCount = 4;
  // Full-size records, padded records, and a prime length.
  for (const std::size_t record_len : {900UL, 450UL, 257UL}) {
    std::vector<float> records(kCount * record_len);
    for (std::size_t i = 0; i < records.size(); ++i) {
      records[i] = static_cast<float>(std::sin(0.37 * static_cast<double>(i)));
    }

    std::vector<float> batch;
    engine.windowed_magnitudes_batch(records, record_len, batch);
    ASSERT_EQ(batch.size(), kCount * engine.dft_size());

    std::vector<float> single;
    for (std::size_t r = 0; r < kCount; ++r) {
      engine.windowed_magnitudes(
          std::span<const float>(records.data() + r * record_len, record_len),
          single);
      ASSERT_EQ(single.size(), engine.dft_size());
      for (std::size_t k = 0; k < single.size(); ++k) {
        EXPECT_EQ(batch[r * engine.dft_size() + k], single[k])
            << "len=" << record_len << " r=" << r << " k=" << k;
      }
    }
  }
}

// patterns() now assembles all full records (originals + reslices) into one
// batched spectral call; the result must match the per-record reference
// exactly, including the trailing partial record.
TEST(FeatureExtractor, PatternsMatchPerRecordReference) {
  const auto params = default_params();
  const core::FeatureExtractor fx(params);
  // 10.5 records: exercises reslicing and a 450-sample trailing partial.
  std::vector<float> ensemble(static_cast<std::size_t>(10.5 * 900.0));
  for (std::size_t i = 0; i < ensemble.size(); ++i) {
    ensemble[i] = static_cast<float>(std::sin(0.11 * static_cast<double>(i)) +
                                     0.3 * std::sin(0.9 * static_cast<double>(i)));
  }

  // Reference: the pre-batching slicing, spelled out (chop, 50%-overlap
  // reslice between equal-size neighbours, spectrum per record, merge).
  std::vector<std::vector<float>> records;
  for (std::size_t start = 0; start < ensemble.size();
       start += params.record_size) {
    const std::size_t len =
        std::min(params.record_size, ensemble.size() - start);
    records.emplace_back(ensemble.begin() + static_cast<std::ptrdiff_t>(start),
                         ensemble.begin() +
                             static_cast<std::ptrdiff_t>(start + len));
  }
  std::vector<std::vector<float>> sliced;
  for (std::size_t i = 0; i < records.size(); ++i) {
    sliced.push_back(records[i]);
    if (params.reslice && i + 1 < records.size() &&
        records[i].size() == records[i + 1].size() && records[i].size() >= 2) {
      const std::size_t half = records[i].size() / 2;
      std::vector<float> overlap(records[i].end() -
                                     static_cast<std::ptrdiff_t>(half),
                                 records[i].end());
      overlap.insert(overlap.end(), records[i + 1].begin(),
                     records[i + 1].begin() + static_cast<std::ptrdiff_t>(
                                                  records[i].size() - half));
      sliced.push_back(std::move(overlap));
    }
  }
  std::vector<std::vector<float>> spectra;
  for (const auto& rec : sliced) spectra.push_back(fx.record_spectrum(rec));
  std::vector<std::vector<float>> expected;
  for (std::size_t start = 0; start + params.pattern_merge <= spectra.size();
       start += params.pattern_stride) {
    std::vector<float> pattern;
    for (std::size_t i = 0; i < params.pattern_merge; ++i) {
      pattern.insert(pattern.end(), spectra[start + i].begin(),
                     spectra[start + i].end());
    }
    expected.push_back(std::move(pattern));
  }

  const auto got = fx.patterns(ensemble);
  ASSERT_EQ(got.size(), expected.size());
  ASSERT_FALSE(got.empty());
  for (std::size_t p = 0; p < got.size(); ++p) {
    ASSERT_EQ(got[p].size(), expected[p].size());
    for (std::size_t f = 0; f < got[p].size(); ++f) {
      EXPECT_EQ(got[p][f], expected[p][f]) << "p=" << p << " f=" << f;
    }
  }
}

TEST(FeatureExtractor, PaaPatternIsReductionOfRawPattern) {
  auto raw_params = default_params();
  raw_params.use_paa = false;
  auto paa_params = default_params();

  const core::FeatureExtractor raw_fx(raw_params);
  const core::FeatureExtractor paa_fx(paa_params);

  std::vector<float> ensemble(10800);
  for (std::size_t i = 0; i < ensemble.size(); ++i) {
    ensemble[i] = static_cast<float>(std::sin(0.31 * static_cast<double>(i)) +
                                     0.2 * std::sin(1.7 * static_cast<double>(i)));
  }
  const auto raw = raw_fx.patterns(ensemble);
  const auto paa = paa_fx.patterns(ensemble);
  ASSERT_EQ(raw.size(), paa.size());
  ASSERT_FALSE(raw.empty());

  // Each PAA feature equals the mean of 10 consecutive raw features.
  for (std::size_t p = 0; p < raw.size(); ++p) {
    ASSERT_EQ(raw[p].size(), 1050u);
    ASSERT_EQ(paa[p].size(), 105u);
    for (std::size_t f = 0; f < 105; ++f) {
      double mean = 0.0;
      for (std::size_t k = 0; k < 10; ++k) mean += raw[p][f * 10 + k];
      mean /= 10.0;
      EXPECT_NEAR(paa[p][f], mean, 1e-4);
    }
  }
}
