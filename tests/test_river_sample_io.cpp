// Sample sources and ensemble sinks (river/sample_io.hpp): chunked reads,
// end-of-stream semantics, clean/abnormal close reporting, WAV streaming
// equivalence, and record-log / channel round trips.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "dsp/wav.hpp"
#include "river/channel.hpp"
#include "river/record.hpp"
#include "river/record_log.hpp"
#include "river/sample_io.hpp"
#include "test_support.hpp"

namespace dsp = dynriver::dsp;
namespace river = dynriver::river;
namespace testsupport = dynriver::testsupport;
using river::Record;

namespace {

std::vector<float> ramp(std::size_t n) {
  std::vector<float> xs(n);
  for (std::size_t i = 0; i < n; ++i) xs[i] = static_cast<float>(i) * 0.001F;
  return xs;
}

/// Drain a source in `chunk`-sized reads.
std::vector<float> drain(river::SampleSource& source, std::size_t chunk) {
  std::vector<float> out;
  std::vector<float> buf(chunk);
  for (;;) {
    const std::size_t n = source.read(buf);
    if (n == 0) break;
    out.insert(out.end(), buf.begin(),
               buf.begin() + static_cast<std::ptrdiff_t>(n));
  }
  return out;
}

}  // namespace

TEST(BufferSource, ReadsEverySampleThenZero) {
  const auto xs = ramp(1000);
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{7},
                                  std::size_t{256}, std::size_t{2000}}) {
    river::BufferSource source(xs, 21600.0);
    EXPECT_EQ(source.sample_rate(), 21600.0);
    EXPECT_EQ(drain(source, chunk), xs) << "chunk=" << chunk;
    std::vector<float> more(8);
    EXPECT_EQ(source.read(more), 0U);  // stays at end
  }
}

TEST(FunctionSource, WrapsAnyGenerator) {
  std::size_t served = 0;
  river::FunctionSource source(
      [&](std::span<float> out) {
        const std::size_t n = std::min<std::size_t>(out.size(), 100 - served);
        for (std::size_t i = 0; i < n; ++i) {
          out[i] = static_cast<float>(served + i);
        }
        served += n;
        return n;
      },
      360.0);
  const auto got = drain(source, 33);
  ASSERT_EQ(got.size(), 100U);
  EXPECT_EQ(got.front(), 0.0F);
  EXPECT_EQ(got.back(), 99.0F);
  EXPECT_EQ(source.sample_rate(), 360.0);
}

class SampleIoFileTest : public testsupport::TempDirTest {};

TEST_F(SampleIoFileTest, WavFileSourceMatchesBatchReader) {
  // Stereo clip: streaming must downmix exactly like read_wav + to_mono.
  dsp::WavClip clip;
  clip.sample_rate = 21600;
  clip.channels = 2;
  clip.samples = ramp(2 * 4321);
  const auto path = temp_file("stereo.wav");
  dsp::write_wav(path, clip);

  const auto want = dsp::to_mono(dsp::read_wav(path));
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{900},
                                  std::size_t{10000}}) {
    river::WavFileSource source(path);
    EXPECT_EQ(source.sample_rate(), 21600.0);
    EXPECT_EQ(drain(source, chunk), want) << "chunk=" << chunk;
  }
}

TEST_F(SampleIoFileTest, WavStreamReaderReportsShape) {
  dsp::WavClip clip;
  clip.sample_rate = 8000;
  clip.channels = 1;
  clip.samples = ramp(777);
  const auto path = temp_file("mono.wav");
  dsp::write_wav(path, clip);

  dsp::WavStreamReader reader(path);
  EXPECT_EQ(reader.sample_rate(), 8000U);
  EXPECT_EQ(reader.channels(), 1U);
  EXPECT_EQ(reader.total_frames(), 777U);
  std::vector<float> buf(777);
  EXPECT_EQ(reader.read_mono(buf), 777U);
  EXPECT_EQ(reader.frames_read(), 777U);
  EXPECT_EQ(reader.read_mono(buf), 0U);
}

TEST_F(SampleIoFileTest, EnsembleRecordsCarryProvenance) {
  const river::Ensemble ensemble{12345, ramp(600)};
  const auto records = river::ensemble_to_records(ensemble, 3, 21600.0);
  ASSERT_EQ(records.size(), 3U);
  EXPECT_EQ(records[0].type, river::RecordType::kOpenScope);
  EXPECT_EQ(records[0].scope_type, river::kScopeEnsemble);
  EXPECT_EQ(records[0].attr_int(river::kAttrEnsembleId, -1), 3);
  EXPECT_EQ(records[0].attr_int(river::kAttrStartSample, -1), 12345);
  EXPECT_EQ(records[0].attr_int(river::kAttrNumSamples, -1), 600);
  EXPECT_EQ(records[0].attr_double(river::kAttrSampleRate, 0.0), 21600.0);
  EXPECT_EQ(records[1].subtype, river::kSubtypeAudio);
  EXPECT_EQ(records[1].floats().size(), 600U);
  EXPECT_EQ(records[2].type, river::RecordType::kCloseScope);
}

TEST_F(SampleIoFileTest, RecordLogSinkThenSourceRoundTrips) {
  const auto path = temp_file("ensembles.rlog");
  const river::Ensemble a{100, ramp(500)};
  const river::Ensemble b{9000, ramp(321)};
  {
    river::RecordLogEnsembleSink sink(path, 21600.0);
    sink.accept(a);
    sink.accept(b);
    sink.finish();
    EXPECT_EQ(sink.ensembles_written(), 2U);
  }

  // The source replays the audio payloads as one concatenated stream.
  river::RecordLogSource source(path);
  auto got = drain(source, 256);
  std::vector<float> want(a.samples);
  want.insert(want.end(), b.samples.begin(), b.samples.end());
  EXPECT_EQ(got, want);
  EXPECT_TRUE(source.clean());
  EXPECT_TRUE(source.exhausted());
  EXPECT_EQ(source.records_in(), 6U);  // 2 x (open + data + close)
}

TEST_F(SampleIoFileTest, RecordLogSourceReportsTornTailAsLostNotError) {
  // A station that died mid-frame leaves a torn tail; the source must
  // deliver every complete ensemble and flag the end as unclean — without
  // throwing (that regression lived in RecordLogReader::next).
  const auto path = temp_file("torn.rlog");
  {
    river::RecordLogEnsembleSink sink(path, 21600.0);
    sink.accept(river::Ensemble{100, ramp(500)});
    sink.accept(river::Ensemble{9000, ramp(300)});
    sink.finish();
  }
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 7);

  river::RecordLogSource source(path);
  const auto got = drain(source, 256);
  EXPECT_EQ(got.size(), 500u + 300u);  // the data frames all precede the cut
  EXPECT_FALSE(source.clean());
  EXPECT_TRUE(source.exhausted());
}

TEST_F(SampleIoFileTest, FlatLogSingleBitFlipNeverCrashesScanOrDrain) {
  // The corruption drill the segment store gets, applied to the flat log:
  // any one-bit flip anywhere may cost records, but the scan must stay
  // inside the file and the reader must either stop cleanly (torn tail) or
  // throw WireError — never crash, hang, or fabricate records.
  const auto path = temp_file("flip.rlog");
  {
    river::RecordLogWriter writer(path);
    for (std::uint64_t i = 0; i < 3; ++i) {
      auto rec = Record::data(river::kSubtypeAudio, ramp(120));
      rec.sequence = i;
      writer.write(rec);
    }
    writer.close();
  }
  const auto size = std::filesystem::file_size(path);

  testsupport::sweep_file_bit_flips(path, [&](std::size_t at) {
    const auto [valid_bytes, valid_records] =
        river::scan_log_valid_prefix(path);
    EXPECT_LE(valid_bytes, size) << "flip at byte " << at;
    EXPECT_LE(valid_records, 3U) << "flip at byte " << at;

    river::RecordLogReader reader(path);
    Record rec;
    std::size_t drained = 0;
    try {
      while (reader.next(rec)) ++drained;
      // Clean end (possibly torn): the reader and the scanner must agree on
      // the recoverable prefix.
      EXPECT_EQ(drained, valid_records) << "flip at byte " << at;
    } catch (const river::WireError&) {
      // Structural corruption past the valid prefix.
      EXPECT_LE(drained, valid_records) << "flip at byte " << at;
    }
  });

  // The sweep restored the file: everything reads back.
  EXPECT_EQ(river::scan_log_valid_prefix(path).second, 3U);
}

TEST_F(SampleIoFileTest, FlatLogTruncatedAtEveryByteDrainsThePrefix) {
  // Pure truncation is always a torn tail, never structural corruption:
  // every complete frame before the cut must come back, with no throw.
  const auto path = temp_file("cut.rlog");
  {
    river::RecordLogWriter writer(path);
    for (std::uint64_t i = 0; i < 3; ++i) {
      auto rec = Record::data(river::kSubtypeAudio, ramp(60));
      rec.sequence = i;
      writer.write(rec);
    }
    writer.close();
  }

  testsupport::sweep_file_truncations(path, [&](std::size_t len) {
    const auto [valid_bytes, valid_records] =
        river::scan_log_valid_prefix(path);
    EXPECT_LE(valid_bytes, len) << "cut at byte " << len;

    river::RecordLogReader reader(path);
    Record rec;
    std::size_t drained = 0;
    EXPECT_NO_THROW({
      while (reader.next(rec)) ++drained;
    }) << "cut at byte " << len;
    EXPECT_EQ(drained, valid_records) << "cut at byte " << len;
  });
}

TEST_F(SampleIoFileTest, RecordSampleSourceLearnsRateFromDataAttrs) {
  // Self-describing data records (segment-store replay seeking past the
  // clip scope) still teach the source its rate.
  const auto path = temp_file("selfdesc.drl");
  {
    river::RecordLogWriter writer(path);
    auto rec = Record::data(river::kSubtypeAudio, ramp(64));
    rec.set_attr(river::kAttrSampleRate, 12345.0);
    writer.write(rec);
    writer.close();
  }
  river::RecordLogSource source(path);
  EXPECT_EQ(source.sample_rate(), 0.0);
  EXPECT_EQ(drain(source, 64), ramp(64));
  EXPECT_EQ(source.sample_rate(), 12345.0);
  EXPECT_TRUE(source.clean());
}

TEST(RecordChannelSource, StreamsAudioAndReportsCleanClose) {
  auto channel = std::make_shared<river::InProcessChannel>(64);
  const auto xs = ramp(2000);

  Record open = Record::open_scope(river::kScopeClip, 0);
  open.set_attr(river::kAttrSampleRate, 21600.0);
  channel->send(std::move(open));
  for (std::size_t pos = 0; pos < xs.size(); pos += 900) {
    const std::size_t n = std::min<std::size_t>(900, xs.size() - pos);
    channel->send(Record::data(
        river::kSubtypeAudio,
        river::FloatVec(xs.begin() + static_cast<std::ptrdiff_t>(pos),
                        xs.begin() + static_cast<std::ptrdiff_t>(pos + n))));
  }
  channel->send(Record::close_scope(river::kScopeClip, 0));
  channel->close();

  river::RecordChannelSource source(channel);
  EXPECT_EQ(source.sample_rate(), 0.0);  // no records pulled yet
  EXPECT_EQ(drain(source, 333), xs);
  EXPECT_EQ(source.sample_rate(), 21600.0);  // learned from the OpenScope
  EXPECT_TRUE(source.clean());
}

TEST(RecordChannelSource, DisconnectReportsAbnormalEnd) {
  auto channel = std::make_shared<river::InProcessChannel>(64);
  channel->send(Record::data(river::kSubtypeAudio, river::FloatVec(100, 0.5F)));
  channel->disconnect();

  river::RecordChannelSource source(channel);
  const auto got = drain(source, 64);
  // An InProcessChannel disconnect loses in-flight records by design; the
  // source surfaces the abnormal end instead of hanging or throwing.
  EXPECT_TRUE(got.empty());
  EXPECT_FALSE(source.clean());
  EXPECT_TRUE(source.exhausted());
}

TEST(ChannelEnsembleSink, ShipsScopedRecordsAndCloses) {
  auto channel = std::make_shared<river::InProcessChannel>(64);
  {
    river::ChannelEnsembleSink sink(channel, 21600.0);
    sink.accept(river::Ensemble{42, ramp(120)});
    sink.finish();
    EXPECT_EQ(sink.dropped(), 0U);
  }

  // Receivable as a RecordChannelSource on the other end.
  river::RecordChannelSource source(channel);
  EXPECT_EQ(drain(source, 64), ramp(120));
  EXPECT_TRUE(source.clean());
  EXPECT_EQ(source.records_in(), 3U);
}

TEST(Sinks, CallbackCollectingAndNull) {
  std::size_t called = 0;
  river::CallbackEnsembleSink callback([&](river::Ensemble e) {
    ++called;
    EXPECT_EQ(e.start_sample, 7U);
  });
  callback.accept(river::Ensemble{7, ramp(10)});
  EXPECT_EQ(called, 1U);

  river::CollectingEnsembleSink collecting;
  collecting.accept(river::Ensemble{1, ramp(4)});
  collecting.accept(river::Ensemble{2, ramp(5)});
  ASSERT_EQ(collecting.ensembles.size(), 2U);
  EXPECT_EQ(collecting.ensembles[1].length(), 5U);

  river::NullEnsembleSink null_sink;
  null_sink.accept(river::Ensemble{3, ramp(6)});  // no observable effect
  null_sink.finish();
}
