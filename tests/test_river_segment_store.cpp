// Segment store (river/segment_store.hpp): rotation, sealing, manifest,
// O(log n) seek with sparse-index probes, CRC32C damage detection,
// crash recovery, retention, compaction — and replay bit-identity: the
// same ensembles whether extraction runs live, from a flat record log, or
// from a segment store (standalone or through the SessionScheduler).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <span>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/extractor.hpp"
#include "core/session_scheduler.hpp"
#include "core/stream_session.hpp"
#include "river/record.hpp"
#include "river/record_log.hpp"
#include "river/sample_io.hpp"
#include "river/segment_store.hpp"
#include "river/wire.hpp"
#include "synth/station.hpp"
#include "test_support.hpp"

namespace core = dynriver::core;
namespace river = dynriver::river;
namespace testsupport = dynriver::testsupport;
namespace fs = std::filesystem;
using river::Record;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::vector<float> ramp(std::size_t n) {
  std::vector<float> xs(n);
  for (std::size_t i = 0; i < n; ++i) xs[i] = static_cast<float>(i) * 0.001F;
  return xs;
}

/// A data record with `n` floats stamped so tests can identify it later.
Record audio_record(std::uint64_t seq, std::size_t n) {
  Record rec = Record::data(river::kSubtypeAudio,
                            river::FloatVec(n, static_cast<float>(seq)));
  rec.sequence = seq;
  return rec;
}

/// Drain one cursor, returning every record (and checking time monotonicity).
std::vector<Record> drain_cursor(river::SegmentStoreReader::Cursor& cursor) {
  std::vector<Record> out;
  Record rec;
  double prev = -kInf;
  while (cursor.next(rec)) {
    EXPECT_GE(cursor.time(), prev);
    prev = cursor.time();
    out.push_back(rec);
  }
  return out;
}

/// Drain a sample source in `chunk`-sized reads.
std::vector<float> drain(river::SampleSource& source, std::size_t chunk) {
  std::vector<float> out;
  std::vector<float> buf(chunk);
  for (;;) {
    const std::size_t n = source.read(buf);
    if (n == 0) break;
    out.insert(out.end(), buf.begin(),
               buf.begin() + static_cast<std::ptrdiff_t>(n));
  }
  return out;
}

/// Parameters scaled down so short synthetic signals trigger extraction.
core::PipelineParams small_params() {
  core::PipelineParams params;
  params.anomaly = {.window = 50, .alphabet = 6, .level = 2,
                    .ma_window = 400, .frame = 8};
  params.trigger_min_baseline = 1500;
  params.trigger_hold_samples = 300;
  params.min_ensemble_samples = 600;
  params.merge_gap_samples = 2000;
  return params;
}

std::vector<float> random_signal_with_events(std::size_t n, unsigned seed) {
  auto xs = testsupport::noise_with_bursts(n, n / 4, n / 8, seed);
  const auto second =
      testsupport::noise_with_bursts(n, (3 * n) / 5, n / 10, seed + 1);
  for (std::size_t i = (3 * n) / 5; i < std::min(n, (3 * n) / 5 + n / 10);
       ++i) {
    xs[i] += second[i] * 0.5F;
  }
  return xs;
}

void expect_same_ensembles(const std::vector<river::Ensemble>& got,
                           const std::vector<river::Ensemble>& want,
                           const char* label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].start_sample, want[i].start_sample)
        << label << " ensemble=" << i;
    ASSERT_EQ(got[i].samples, want[i].samples) << label << " ensemble=" << i;
  }
}

class SegmentStoreTest : public testsupport::TempDirTest {
 protected:
  [[nodiscard]] fs::path store_dir() const { return temp_file("store"); }
};

}  // namespace

// ---------------------------------------------------------------------------
// Writer basics: round trip, rotation, live tail visibility
// ---------------------------------------------------------------------------

TEST_F(SegmentStoreTest, RoundTripsRecordsWithTimesAcrossReopen) {
  const auto dir = store_dir();
  std::vector<Record> written;
  {
    river::SegmentedRecordLog log(dir);
    Record open = Record::open_scope(river::kScopeClip, 0);
    open.set_attr(river::kAttrSampleRate, 21600.0);
    log.append(open, 0.0);
    written.push_back(open);
    for (std::uint64_t i = 0; i < 20; ++i) {
      const Record rec = audio_record(i, 30 + static_cast<std::size_t>(i));
      log.append(rec, 0.1 * static_cast<double>(i));
      written.push_back(rec);
    }
    const Record close = Record::close_scope(river::kScopeClip, 0);
    log.append(close, 2.0);
    written.push_back(close);
    EXPECT_EQ(log.records_written(), written.size());
    log.close();
  }

  river::SegmentStoreReader reader(dir);
  ASSERT_EQ(reader.segments().size(), 1U);
  EXPECT_TRUE(reader.segments()[0].sealed);
  EXPECT_EQ(reader.segments()[0].frames, written.size());
  EXPECT_EQ(reader.segments()[0].t_min, 0.0);
  EXPECT_EQ(reader.segments()[0].t_max, 2.0);
  EXPECT_TRUE(reader.verify());

  auto cursor = reader.seek(0.0);
  const auto got = drain_cursor(cursor);
  ASSERT_EQ(got.size(), written.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], written[i]) << "record " << i;
  }
  EXPECT_FALSE(cursor.torn());
}

TEST_F(SegmentStoreTest, RotatesBySizeIntoOrderedNonOverlappingSegments) {
  const auto dir = store_dir();
  river::SegmentStoreOptions options;
  options.max_segment_bytes = 4 << 10;  // tiny: force many rotations
  const std::uint64_t kRecords = 200;
  {
    river::SegmentedRecordLog log(dir, options);
    for (std::uint64_t i = 0; i < kRecords; ++i) {
      log.append(audio_record(i, 64), 0.01 * static_cast<double>(i));
    }
    log.close();
  }

  river::SegmentStoreReader reader(dir);
  const auto segments = reader.segments();
  ASSERT_GT(segments.size(), 3U) << "rotation must have happened";
  std::uint64_t frames = 0;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    EXPECT_TRUE(segments[i].sealed);
    EXPECT_LE(segments[i].t_min, segments[i].t_max);
    if (i > 0) {
      EXPECT_GE(segments[i].t_min, segments[i - 1].t_max)
          << "spans must be ordered and non-overlapping";
    }
    frames += segments[i].frames;
  }
  EXPECT_EQ(frames, kRecords);
  EXPECT_TRUE(reader.verify());

  auto cursor = reader.seek(0.0);
  EXPECT_EQ(drain_cursor(cursor).size(), kRecords);
}

TEST_F(SegmentStoreTest, RotatesByTime) {
  const auto dir = store_dir();
  river::SegmentStoreOptions options;
  options.max_segment_seconds = 1.0;
  river::SegmentedRecordLog log(dir, options);
  for (std::uint64_t i = 0; i < 40; ++i) {
    log.append(audio_record(i, 8), 0.1 * static_cast<double>(i));  // 4 s total
  }
  log.close();

  const auto segments = log.segments();
  ASSERT_EQ(segments.size(), 4U);
  for (const auto& s : segments) {
    EXPECT_LT(s.t_max - s.t_min, 1.0);
  }
}

TEST_F(SegmentStoreTest, ReaderSeesSealedSegmentsPlusSyncedActiveTail) {
  // Concurrent-reader contract, single-threaded: a reader opened while the
  // writer is live sees every sealed segment plus the synced prefix of the
  // active one — and a clean (not torn) end at the sync boundary.
  const auto dir = store_dir();
  river::SegmentedRecordLog log(dir);
  for (std::uint64_t i = 0; i < 10; ++i) {
    log.append(audio_record(i, 32), static_cast<double>(i));
  }
  log.seal_active();
  for (std::uint64_t i = 10; i < 15; ++i) {
    log.append(audio_record(i, 32), static_cast<double>(i));
  }
  log.sync();  // makes the 5 active-tail records visible on disk

  {
    river::SegmentStoreReader reader(dir);
    auto cursor = reader.seek(0.0);
    const auto got = drain_cursor(cursor);
    EXPECT_EQ(got.size(), 15U);
    EXPECT_FALSE(cursor.torn()) << "sync boundary is a clean end";
  }

  // More appends buffered in the writer (no sync): a fresh reader still
  // ends cleanly at the last complete on-disk frame.
  for (std::uint64_t i = 15; i < 18; ++i) {
    log.append(audio_record(i, 32), static_cast<double>(i));
  }
  {
    river::SegmentStoreReader reader(dir);
    auto cursor = reader.seek(0.0);
    const auto got = drain_cursor(cursor);
    EXPECT_GE(got.size(), 15U);
    EXPECT_LE(got.size(), 18U);
  }
  log.close();
}

// ---------------------------------------------------------------------------
// Seek: only overlapping segments, bounded scans
// ---------------------------------------------------------------------------

TEST_F(SegmentStoreTest, SeekTouchesOnlyOverlappingSegments) {
  const auto dir = store_dir();
  {
    river::SegmentedRecordLog log(dir);
    // 8 sealed segments, one per second: segment k spans [k, k + 0.9].
    for (std::uint64_t sec = 0; sec < 8; ++sec) {
      for (std::uint64_t i = 0; i < 10; ++i) {
        log.append(audio_record(sec * 10 + i, 16),
                   static_cast<double>(sec) + 0.1 * static_cast<double>(i));
      }
      log.seal_active();
    }
    log.close();
  }

  river::SegmentStoreReader reader(dir);
  ASSERT_EQ(reader.segments().size(), 8U);

  auto cursor = reader.seek(3.05, 5.5);
  const auto got = drain_cursor(cursor);
  // Records in [3.05, 5.5): 3.1..3.9 (9), 4.0..4.9 (10), 5.0..5.4 (5).
  EXPECT_EQ(got.size(), 9U + 10U + 5U);
  // Only segments 3, 4, 5 overlap the range; 0-2 and 6-7 must not be opened.
  EXPECT_EQ(reader.segments_opened(), 3U);

  // An empty range past the archive opens nothing.
  auto beyond = reader.seek(100.0, 200.0);
  Record rec;
  EXPECT_FALSE(beyond.next(rec));
  EXPECT_EQ(reader.segments_opened(), 3U);
}

TEST_F(SegmentStoreTest, SparseIndexBoundsTheScanWithinASegment) {
  const auto dir = store_dir();
  river::SegmentStoreOptions options;
  options.index_every_bytes = 2 << 10;  // dense index: entry every ~4 records
  const std::uint64_t kRecords = 500;   // one big segment, ~230 KiB payload
  {
    river::SegmentedRecordLog log(dir, options);
    for (std::uint64_t i = 0; i < kRecords; ++i) {
      log.append(audio_record(i, 100), 0.01 * static_cast<double>(i));
    }
    log.close();
  }

  river::SegmentStoreReader reader(dir);
  ASSERT_EQ(reader.segments().size(), 1U);

  // Ten records from deep inside the segment: the index probe must land the
  // scan near t0, not at the head of the segment.
  auto cursor = reader.seek(4.0, 4.1);
  const auto got = drain_cursor(cursor);
  EXPECT_EQ(got.size(), 10U);
  // Bounded overshoot: range frames + one index granule (~4 records) + 1.
  EXPECT_LE(cursor.frames_scanned(), got.size() + 8U)
      << "scan must start at the index probe, not the segment head";
}

// ---------------------------------------------------------------------------
// Damage detection and crash recovery
// ---------------------------------------------------------------------------

TEST_F(SegmentStoreTest, SingleBitFlipAnywhereInASealedSegmentIsDetected) {
  const auto dir = store_dir();
  {
    river::SegmentedRecordLog log(dir);
    for (std::uint64_t i = 0; i < 12; ++i) {
      log.append(audio_record(i, 24), 0.1 * static_cast<double>(i));
    }
    log.close();
  }
  river::SegmentStoreReader reader(dir);
  ASSERT_TRUE(reader.verify());
  const auto path = dir / reader.segments()[0].name;
  ASSERT_GT(fs::file_size(path), river::kSegmentHeaderBytes +
                                     river::kSegmentFooterBytes);

  testsupport::sweep_file_bit_flips(
      path,
      [&](std::size_t at) {
        std::string error;
        EXPECT_FALSE(reader.verify(&error)) << "flip at byte " << at;
        EXPECT_FALSE(error.empty()) << "flip at byte " << at;
      },
      // header flags: reserved, unchecked
      [](std::size_t at) { return at == 6 || at == 7; });

  // The sweep restores the pristine file on exit.
  EXPECT_TRUE(reader.verify());
}

TEST_F(SegmentStoreTest, DamagedSealedSegmentSurfacesAsLostNotCrash) {
  const auto dir = store_dir();
  {
    river::SegmentedRecordLog log(dir);
    river::AudioSegmentArchiver archiver(log, 1000.0, 100);
    archiver.push(ramp(1000));
    archiver.finish();
    log.close();
  }
  river::SegmentStoreReader probe(dir);
  const auto path = dir / probe.segments()[0].name;
  {  // corrupt one payload byte mid-segment
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(512);
    const char x = 0x5A;
    f.write(&x, 1);
  }

  river::SegmentStoreSource source(dir);
  (void)drain(source, 256);
  EXPECT_FALSE(source.clean());
  EXPECT_TRUE(source.exhausted());
}

TEST_F(SegmentStoreTest, TornActiveSegmentRecoversValidPrefixAndContinues) {
  const auto dir = store_dir();
  // Fabricate the aftermath of a crash mid-append: an unsealed active
  // segment holding 3 complete envelopes and a torn fourth. (The writer
  // cannot produce this in-process — its destructor always seals — so the
  // file is built from the format constants.)
  fs::create_directories(dir);
  std::vector<Record> survivors;
  {
    std::ofstream out(dir / "seg-000000.drs", std::ios::binary);
    std::uint8_t header[river::kSegmentHeaderBytes] = {};
    std::memcpy(header, &river::kSegmentMagic, 4);
    std::memcpy(header + 4, &river::kSegmentVersion, 2);
    out.write(reinterpret_cast<const char*>(header), sizeof(header));
    for (std::uint64_t i = 0; i < 3; ++i) {
      const Record rec = audio_record(i, 40);
      survivors.push_back(rec);
      const auto frame = river::encode_record(rec);
      const auto len = static_cast<std::uint32_t>(frame.size());
      const double t = static_cast<double>(i);
      out.write(reinterpret_cast<const char*>(&len), 4);
      out.write(reinterpret_cast<const char*>(&t), 8);
      out.write(reinterpret_cast<const char*>(frame.data()),
                static_cast<std::streamsize>(frame.size()));
    }
    // Torn tail: an envelope header promising 200 bytes, then only garbage.
    const std::uint32_t len = 200;
    const double t = 3.0;
    out.write(reinterpret_cast<const char*>(&len), 4);
    out.write(reinterpret_cast<const char*>(&t), 8);
    const std::vector<char> garbage(17, '\x42');
    out.write(garbage.data(), static_cast<std::streamsize>(garbage.size()));
  }

  river::SegmentedRecordLog log(dir);
  EXPECT_EQ(log.recovered_records(), 3U);
  ASSERT_EQ(log.segments().size(), 1U);
  EXPECT_TRUE(log.segments()[0].sealed) << "recovery seals the valid prefix";

  // The store keeps working: appends land in a new segment after the
  // recovered one, and everything reads back.
  log.append(audio_record(100, 40), 10.0);
  log.close();

  river::SegmentStoreReader reader(dir);
  EXPECT_TRUE(reader.verify());
  auto cursor = reader.seek(0.0);
  const auto got = drain_cursor(cursor);
  ASSERT_EQ(got.size(), 4U);
  for (std::size_t i = 0; i < survivors.size(); ++i) {
    EXPECT_EQ(got[i], survivors[i]) << "recovered record " << i;
  }
  EXPECT_EQ(got[3].sequence, 100U);
}

TEST_F(SegmentStoreTest, AdoptsSealedButUnmanifestedSegmentOnReopen) {
  // Crash window between footer write and manifest publish: on reopen the
  // orphan (index >= manifest next) is adopted, not deleted.
  const auto dir = store_dir();
  {
    river::SegmentedRecordLog log(dir);
    for (std::uint64_t i = 0; i < 6; ++i) {
      log.append(audio_record(i, 16), static_cast<double>(i));
    }
    log.close();
  }
  // Rewind the manifest to the fresh-store state, stranding seg-000000.
  {
    std::ofstream out(dir / "MANIFEST", std::ios::trunc);
    out << "dynriver-segment-store v1\nnext 0\n";
  }

  river::SegmentedRecordLog log(dir);
  ASSERT_EQ(log.segments().size(), 1U);
  EXPECT_EQ(log.segments()[0].frames, 6U);
  log.close();

  river::SegmentStoreReader reader(dir);
  EXPECT_TRUE(reader.verify());
  auto cursor = reader.seek(0.0);
  EXPECT_EQ(drain_cursor(cursor).size(), 6U);
}

// ---------------------------------------------------------------------------
// Retention and compaction
// ---------------------------------------------------------------------------

TEST_F(SegmentStoreTest, RetireBeforeDropsWholeSegmentsAndTheirFiles) {
  const auto dir = store_dir();
  river::SegmentedRecordLog log(dir);
  for (std::uint64_t sec = 0; sec < 4; ++sec) {
    for (std::uint64_t i = 0; i < 5; ++i) {
      log.append(audio_record(sec * 5 + i, 16),
                 static_cast<double>(sec) + 0.1 * static_cast<double>(i));
    }
    log.seal_active();
  }
  const auto names_before = log.segments();
  ASSERT_EQ(names_before.size(), 4U);

  EXPECT_EQ(log.retire_before(2.0), 2U);  // segments [0,0.4] and [1,1.4]
  EXPECT_EQ(log.retire_before(2.0), 0U);  // idempotent
  ASSERT_EQ(log.segments().size(), 2U);
  EXPECT_FALSE(fs::exists(dir / names_before[0].name));
  EXPECT_FALSE(fs::exists(dir / names_before[1].name));
  log.close();

  river::SegmentStoreReader reader(dir);
  EXPECT_TRUE(reader.verify());
  auto cursor = reader.seek(0.0);
  const auto got = drain_cursor(cursor);
  ASSERT_EQ(got.size(), 10U);
  EXPECT_EQ(got.front().sequence, 10U) << "retired records must be gone";
}

TEST_F(SegmentStoreTest, CompactionMergesSmallSegmentsWithIdenticalReadback) {
  const auto dir = store_dir();
  river::SegmentedRecordLog log(dir);
  for (std::uint64_t sec = 0; sec < 6; ++sec) {
    for (std::uint64_t i = 0; i < 8; ++i) {
      log.append(audio_record(sec * 8 + i, 32),
                 static_cast<double>(sec) + 0.1 * static_cast<double>(i));
    }
    log.seal_active();
  }
  std::vector<Record> want;
  {
    river::SegmentStoreReader before(dir);
    auto cursor = before.seek(0.0);
    want = drain_cursor(cursor);
  }
  ASSERT_EQ(want.size(), 48U);

  // Every segment is tiny: the whole run merges into one.
  EXPECT_EQ(log.compact(1 << 20), 5U);
  ASSERT_EQ(log.segments().size(), 1U);
  EXPECT_EQ(log.segments()[0].frames, 48U);
  EXPECT_EQ(log.compact(1 << 20), 0U) << "a lone segment never re-compacts";
  log.close();

  river::SegmentStoreReader reader(dir);
  EXPECT_TRUE(reader.verify());
  auto cursor = reader.seek(0.0);
  const auto got = drain_cursor(cursor);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << "record " << i;
  }
  // The replaced segment files are gone; exactly MANIFEST + 1 segment left.
  std::size_t files = 0;
  for ([[maybe_unused]] const auto& e : fs::directory_iterator(dir)) ++files;
  EXPECT_EQ(files, 2U);
}

TEST_F(SegmentStoreTest, CompactionWithOpenActiveSegmentKeepsActiveRecords) {
  // Regression: compact() while a segment is actively growing must not hand
  // the merged segment the active file's name (which would rename over the
  // live file and lose its records).
  const auto dir = store_dir();
  river::SegmentedRecordLog log(dir);
  for (std::uint64_t sec = 0; sec < 4; ++sec) {
    for (std::uint64_t i = 0; i < 8; ++i) {
      log.append(audio_record(sec * 8 + i, 32),
                 static_cast<double>(sec) + 0.1 * static_cast<double>(i));
    }
    log.seal_active();
  }
  // Open an active segment and leave it growing across the compaction.
  log.append(audio_record(100, 32), 10.0);
  log.append(audio_record(101, 32), 11.0);
  EXPECT_FALSE(log.segments().back().sealed);

  EXPECT_GE(log.compact(1 << 20), 3U);
  // The pre-compaction active records survive alongside post-compaction
  // appends.
  log.append(audio_record(102, 32), 12.0);
  log.close();

  river::SegmentStoreReader reader(dir);
  std::string error;
  EXPECT_TRUE(reader.verify(&error)) << error;
  auto cursor = reader.seek(0.0);
  const auto got = drain_cursor(cursor);
  ASSERT_EQ(got.size(), 35U);
  EXPECT_EQ(got[32].sequence, 100U);
  EXPECT_EQ(got[33].sequence, 101U);
  EXPECT_EQ(got[34].sequence, 102U);
}

// A reader guesses the active file's name from its manifest snapshot's
// `next` index; a compaction racing that snapshot hands the very same index
// to the merged segment. This fixture reconstructs the exact mid-race view
// deterministically — no threads, no timing — by snapshotting a store
// directory, compacting the copy, and planting the merged file beside the
// original (stale) manifest and sealed files.
class StaleReaderCompactionRace : public SegmentStoreTest {
 protected:
  static constexpr std::size_t kRecords = 32;  // 4 sealed segments x 8

  void build_store(const fs::path& dir) {
    river::SegmentedRecordLog log(dir);
    for (std::uint64_t sec = 0; sec < 4; ++sec) {
      for (std::uint64_t i = 0; i < 8; ++i) {
        log.append(audio_record(sec * 8 + i, 32),
                   static_cast<double>(sec) + 0.1 * static_cast<double>(i));
      }
      log.seal_active();
    }
    log.close();  // MANIFEST: seg-000000..03 sealed, next 4, no active file
  }

  /// Compact a copy of `dir` and plant the merged segment (which takes the
  /// stale manifest's `next` index — the name a stale reader presumes
  /// active) back into `dir`. Returns the merged file's name.
  std::string plant_merged_segment(const fs::path& dir) {
    const auto shadow = temp_file("shadow");
    fs::copy(dir, shadow, fs::copy_options::recursive);
    {
      river::SegmentedRecordLog log(shadow);
      EXPECT_EQ(log.compact(1 << 20), 3U);
      log.close();
    }
    const std::string merged = "seg-000004.drs";
    EXPECT_TRUE(fs::exists(shadow / merged));
    fs::copy_file(shadow / merged, dir / merged);
    return merged;
  }
};

TEST_F(StaleReaderCompactionRace, CursorSkipsMergedOldDataPresumedActive) {
  const auto dir = store_dir();
  build_store(dir);
  plant_merged_segment(dir);

  // The stale view: sealed list from the old manifest, plus seg-000004
  // presumed active — but it holds the *merged old* records. Reading it as
  // the live tail would re-emit records 0..31 with time running backwards.
  river::SegmentStoreReader reader(dir);
  auto cursor = reader.seek(0.0);
  const auto got = drain_cursor(cursor);  // asserts time stays monotone
  EXPECT_FALSE(cursor.torn());
  ASSERT_EQ(got.size(), kRecords) << "merged old data re-read as live tail";
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].sequence, i) << "record " << i;
  }
}

TEST_F(StaleReaderCompactionRace, PrefetchedReplaySkipsMergedOldData) {
  const auto dir = store_dir();
  build_store(dir);
  plant_merged_segment(dir);

  // Same stale view through the prefetching replay path (its loader thread
  // walks the identical segment sequence and must apply the same probe).
  river::ReplayOptions options;
  options.prefetch = true;
  river::SegmentStoreSource source(dir, options);
  const auto samples = drain(source, 64);
  EXPECT_EQ(samples.size(), kRecords * 32)
      << "prefetched replay re-read merged old data";
  EXPECT_EQ(source.records_in(), kRecords);
}

TEST_F(StaleReaderCompactionRace, SegmentSealedAfterSnapshotReadsAsSealed) {
  // The probe's other arm: the presumed-active file has a footer but its
  // span *continues* the sealed tail — the writer simply sealed it after
  // the reader's snapshot. It must read with sealed semantics (payload
  // only; the index/footer bytes are not a torn tail).
  const auto dir = store_dir();
  build_store(dir);
  const auto shadow = temp_file("shadow");
  fs::copy(dir, shadow, fs::copy_options::recursive);
  {
    // Newer records into the copy; seal makes seg-000004 a sealed segment.
    river::SegmentedRecordLog log(shadow);
    for (std::uint64_t i = 0; i < 8; ++i) {
      log.append(audio_record(100 + i, 32),
                 10.0 + 0.1 * static_cast<double>(i));
    }
    log.close();
  }
  const std::string newer = "seg-000004.drs";
  ASSERT_TRUE(fs::exists(shadow / newer));
  fs::copy_file(shadow / newer, dir / newer);

  river::SegmentStoreReader reader(dir);
  auto cursor = reader.seek(0.0);
  const auto got = drain_cursor(cursor);
  EXPECT_FALSE(cursor.torn()) << "sealed tail misread as torn active file";
  ASSERT_EQ(got.size(), kRecords + 8);
  EXPECT_EQ(got.back().sequence, 107U);
}

TEST_F(StaleReaderCompactionRace, GenuinelyActiveFileStillReadsAsTail) {
  // Control: with no racing compaction, the presumed-active file really is
  // the writer's live tail (no footer) and its synced records must surface.
  const auto dir = store_dir();
  build_store(dir);
  river::SegmentedRecordLog log(dir);  // reopen: next index 4 becomes active
  log.append(audio_record(200, 32), 20.0);
  log.sync();

  river::SegmentStoreReader reader(dir);
  auto cursor = reader.seek(0.0);
  const auto got = drain_cursor(cursor);
  ASSERT_EQ(got.size(), kRecords + 1);
  EXPECT_EQ(got.back().sequence, 200U);
}

// ---------------------------------------------------------------------------
// Replay: sample windows and bit-identity with live extraction
// ---------------------------------------------------------------------------

TEST_F(SegmentStoreTest, SubrangeReplayYieldsExactSampleWindow) {
  const auto dir = store_dir();
  const auto xs = ramp(3000);
  {
    river::SegmentedRecordLog log(dir);
    river::AudioSegmentArchiver archiver(log, 1000.0, 100);
    archiver.push(xs);
    archiver.finish();
    EXPECT_EQ(archiver.samples_archived(), xs.size());
    log.close();
  }

  // [0.5 s, 1.5 s) at 1 kHz in 100-sample records: exactly samples
  // [500, 1500), because record starts fall on range boundaries.
  river::SegmentStoreSource source(dir, 0.5, 1.5);
  const auto got = drain(source, 256);
  const std::vector<float> want(xs.begin() + 500, xs.begin() + 1500);
  EXPECT_EQ(got, want);
  EXPECT_TRUE(source.clean());
  EXPECT_EQ(source.sample_rate(), 1000.0);  // learned from record attrs
}

TEST_F(SegmentStoreTest, ArchiverResumesAfterExistingArchive) {
  // Regression: a second archive run into the same store used to restart
  // the sample clock at 0, tripping the log's monotone-time contract on the
  // first append. It must continue where the previous run stopped.
  const auto dir = store_dir();
  const auto xs = ramp(1550);
  {
    river::SegmentedRecordLog log(dir);
    river::AudioSegmentArchiver archiver(log, 1000.0, 100);
    EXPECT_EQ(archiver.next_start_sample(), 0U);
    archiver.push(std::span<const float>(xs).subspan(0, 1000));
    archiver.finish();
    log.close();
  }
  {
    river::SegmentedRecordLog log(dir);
    river::AudioSegmentArchiver archiver(log, 1000.0, 100);
    EXPECT_EQ(archiver.next_start_sample(), 1000U);
    archiver.push(std::span<const float>(xs).subspan(1000));
    archiver.finish();
    EXPECT_EQ(archiver.samples_archived(), 550U);
    log.close();
  }

  // The two runs read back as one gapless stream, sequences continuing.
  river::SegmentStoreSource source(dir);
  EXPECT_EQ(drain(source, 256), xs);
  EXPECT_TRUE(source.clean());
  river::SegmentStoreReader reader(dir);
  auto cursor = reader.seek(0.0);
  const auto got = drain_cursor(cursor);
  ASSERT_EQ(got.size(), 16U);  // 10 + (5 full + 1 partial)
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].sequence, i) << "sequence must continue across runs";
  }
}

TEST_F(SegmentStoreTest, ArchiverRejectsSampleRateMismatchOnResume) {
  const auto dir = store_dir();
  {
    river::SegmentedRecordLog log(dir);
    river::AudioSegmentArchiver archiver(log, 1000.0, 100);
    archiver.push(ramp(500));
    archiver.finish();
    log.close();
  }
  river::SegmentedRecordLog log(dir);
  EXPECT_THROW(river::AudioSegmentArchiver(log, 2000.0, 100),
               std::runtime_error);
}

TEST_F(SegmentStoreTest, ReplayIsBitIdenticalToFlatLogAndLiveExtraction) {
  const auto params = small_params();
  const auto xs = random_signal_with_events(60000, 11);
  const double rate = 21600.0;

  // Live extraction is the reference.
  const auto want = core::EnsembleExtractor(params).extract(xs);
  ASSERT_FALSE(want.ensembles.empty());

  // Flat-log replay: self-describing data records in a RecordLog.
  const auto flat_path = temp_file("flat.drl");
  {
    river::RecordLogWriter writer(flat_path);
    for (std::size_t pos = 0; pos < xs.size(); pos += 900) {
      const std::size_t n = std::min<std::size_t>(900, xs.size() - pos);
      Record rec = Record::data(
          river::kSubtypeAudio,
          river::FloatVec(xs.begin() + static_cast<std::ptrdiff_t>(pos),
                          xs.begin() + static_cast<std::ptrdiff_t>(pos + n)));
      rec.set_attr(river::kAttrSampleRate, rate);
      writer.write(rec);
    }
    writer.close();
  }

  // Segment-store replay, with rotation forced mid-stream.
  const auto dir = store_dir();
  {
    river::SegmentStoreOptions options;
    options.max_segment_bytes = 64 << 10;
    river::SegmentedRecordLog log(dir, options);
    river::AudioSegmentArchiver archiver(log, rate, 900);
    for (std::size_t pos = 0; pos < xs.size(); pos += 3333) {
      const std::size_t n = std::min<std::size_t>(3333, xs.size() - pos);
      archiver.push(std::span<const float>(xs).subspan(pos, n));
    }
    archiver.finish();
    log.close();
    ASSERT_GT(log.segments().size(), 1U) << "rotation must be exercised";
  }

  const auto replay = [&](river::SampleSource& source) {
    core::StreamSession session(params);
    river::CollectingEnsembleSink sink;
    core::run_stream(source, session, sink);
    return std::move(sink.ensembles);
  };

  river::RecordLogSource flat(flat_path);
  expect_same_ensembles(replay(flat), want.ensembles, "flat log");
  ASSERT_TRUE(flat.clean());

  river::SegmentStoreSource segmented(dir);
  expect_same_ensembles(replay(segmented), want.ensembles, "segment store");
  ASSERT_TRUE(segmented.clean());
}

// ---------------------------------------------------------------------------
// Packed payloads: size floor, bit-identity, mixed stores, damage drills
// ---------------------------------------------------------------------------

namespace {

/// The PCM16 grid the WAV/ADC path produces: n/32768 with n = round(v*32767).
float quantize_pcm16(float v) {
  const float c = std::clamp(v, -1.0F, 1.0F);
  return static_cast<float>(std::lround(c * 32767.0F)) / 32768.0F;
}

std::vector<float> quantized_signal_with_events(std::size_t n, unsigned seed) {
  auto xs = random_signal_with_events(n, seed);
  for (auto& x : xs) x = quantize_pcm16(x);
  return xs;
}

void expect_bit_identical(const std::vector<float>& got,
                          const std::vector<float>& want, const char* label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t i = 0; i < got.size(); ++i) {
    std::uint32_t gb = 0;
    std::uint32_t wb = 0;
    std::memcpy(&gb, &got[i], 4);
    std::memcpy(&wb, &want[i], 4);
    ASSERT_EQ(gb, wb) << label << " sample " << i;
  }
}

/// Archive `xs` into `dir` (one run, sealed on close) and return the summed
/// sealed payload bytes.
std::uint64_t archive_and_measure(const fs::path& dir,
                                  const std::vector<float>& xs, bool pack) {
  river::SegmentStoreOptions options;
  options.pack_payloads = pack;
  river::SegmentedRecordLog log(dir, options);
  river::AudioSegmentArchiver archiver(log, 21600.0, 900);
  archiver.push(xs);
  archiver.finish();
  log.close();
  std::uint64_t bytes = 0;
  for (const auto& s : log.segments()) bytes += s.bytes;
  return bytes;
}

}  // namespace

TEST_F(SegmentStoreTest, PackedStoreIsAtLeastThreefoldSmallerOnStationAudio) {
  // The acceptance floor, measured at the store level: the same PCM16-grid
  // station clip archived packed vs raw, identical chunking and rotation.
  dynriver::synth::SensorStation station({}, 77);
  const auto clip = station.record_clip({dynriver::synth::SpeciesId::kAMGO,
                                         dynriver::synth::SpeciesId::kBCCH});
  std::vector<float> xs(clip.clip.samples.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = quantize_pcm16(clip.clip.samples[i]);
  }
  const auto raw_bytes = archive_and_measure(temp_file("raw"), xs, false);
  const auto packed_bytes = archive_and_measure(temp_file("packed"), xs, true);
  EXPECT_GE(raw_bytes, 3 * packed_bytes)
      << "ratio " << static_cast<double>(raw_bytes) /
                         static_cast<double>(packed_bytes);

  // And the packed store reads back bit-identically.
  river::SegmentStoreSource source(temp_file("packed"));
  expect_bit_identical(drain(source, 256), xs, "packed replay");
  EXPECT_TRUE(source.clean());
  river::SegmentStoreReader reader(temp_file("packed"));
  EXPECT_TRUE(reader.verify());
}

TEST_F(SegmentStoreTest, PackedReplayBitIdenticalEveryChunkingAndBothPaths) {
  // Replay of a packed, multi-segment store must be sample-exact for every
  // read chunking, with and without the prefetch thread.
  const auto xs = quantized_signal_with_events(30000, 23);
  const auto dir = store_dir();
  {
    river::SegmentStoreOptions options;
    options.max_segment_bytes = 16 << 10;  // force many segments
    options.pack_payloads = true;
    river::SegmentedRecordLog log(dir, options);
    river::AudioSegmentArchiver archiver(log, 21600.0, 900);
    archiver.push(xs);
    archiver.finish();
    log.close();
    ASSERT_GT(log.segments().size(), 2U) << "rotation must be exercised";
  }

  for (const bool prefetch : {true, false}) {
    for (const std::size_t chunk : {7U, 64U, 256U, 900U, 1024U, 4096U}) {
      river::ReplayOptions options;
      options.prefetch = prefetch;
      river::SegmentStoreSource source(dir, options);
      expect_bit_identical(drain(source, chunk), xs,
                           prefetch ? "prefetched" : "synchronous");
      EXPECT_TRUE(source.clean())
          << "prefetch=" << prefetch << " chunk=" << chunk;
    }
  }
}

TEST_F(SegmentStoreTest, PackedReplayExtractionMatchesLiveAndFlatLog) {
  // The tentpole pin: compressed + prefetched replay drives extraction to
  // the same ensembles as live extraction and as a flat-log replay.
  const auto params = small_params();
  const auto xs = quantized_signal_with_events(60000, 11);
  const double rate = 21600.0;

  const auto want = core::EnsembleExtractor(params).extract(xs);
  ASSERT_FALSE(want.ensembles.empty());

  const auto flat_path = temp_file("flat.drl");
  {
    river::RecordLogWriter writer(flat_path);
    for (std::size_t pos = 0; pos < xs.size(); pos += 900) {
      const std::size_t n = std::min<std::size_t>(900, xs.size() - pos);
      Record rec = Record::data(
          river::kSubtypeAudio,
          river::FloatVec(xs.begin() + static_cast<std::ptrdiff_t>(pos),
                          xs.begin() + static_cast<std::ptrdiff_t>(pos + n)));
      rec.set_attr(river::kAttrSampleRate, rate);
      writer.write(rec);
    }
    writer.close();
  }

  const auto dir = store_dir();
  {
    river::SegmentStoreOptions options;
    options.max_segment_bytes = 16 << 10;
    options.pack_payloads = true;
    river::SegmentedRecordLog log(dir, options);
    river::AudioSegmentArchiver archiver(log, rate, 900);
    archiver.push(xs);
    archiver.finish();
    log.close();
    ASSERT_GT(log.segments().size(), 1U);
  }

  const auto replay = [&](river::SampleSource& source) {
    core::StreamSession session(params);
    river::CollectingEnsembleSink sink;
    core::run_stream(source, session, sink);
    return std::move(sink.ensembles);
  };

  river::RecordLogSource flat(flat_path);
  expect_same_ensembles(replay(flat), want.ensembles, "flat log");
  ASSERT_TRUE(flat.clean());

  river::SegmentStoreSource prefetched(dir);
  expect_same_ensembles(replay(prefetched), want.ensembles, "packed prefetch");
  ASSERT_TRUE(prefetched.clean());

  river::ReplayOptions sync_options;
  sync_options.prefetch = false;
  river::SegmentStoreSource synchronous(dir, sync_options);
  expect_same_ensembles(replay(synchronous), want.ensembles, "packed sync");
  ASSERT_TRUE(synchronous.clean());
}

TEST_F(SegmentStoreTest, MixedPackedAndRawSegmentsReplayAndCompact) {
  // Packing is a per-writer-session choice: raw and packed frames interleave
  // in one store, and compaction (a raw envelope copy) preserves both.
  const auto dir = store_dir();
  std::vector<Record> written;
  const auto run = [&](bool pack, std::uint64_t first_seq, double first_t) {
    river::SegmentStoreOptions options;
    options.pack_payloads = pack;
    river::SegmentedRecordLog log(dir, options);
    for (std::uint64_t i = 0; i < 8; ++i) {
      const Record rec = audio_record(first_seq + i, 64);
      log.append(rec, first_t + 0.1 * static_cast<double>(i));
      written.push_back(rec);
    }
    log.close();
  };
  run(false, 0, 0.0);
  run(true, 8, 1.0);
  run(false, 16, 2.0);

  const auto check = [&](const char* label) {
    river::SegmentStoreReader reader(dir);
    std::string error;
    EXPECT_TRUE(reader.verify(&error)) << label << ": " << error;
    auto cursor = reader.seek(0.0);
    const auto got = drain_cursor(cursor);
    ASSERT_EQ(got.size(), written.size()) << label;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], written[i]) << label << " record " << i;
    }
  };
  check("mixed store");

  river::SegmentedRecordLog log(dir);
  EXPECT_GE(log.compact(1 << 20), 2U);
  EXPECT_EQ(log.segments().size(), 1U);
  log.close();
  check("after compaction");
}

TEST_F(SegmentStoreTest, PackedSealedSegmentSingleBitFlipIsDetected) {
  // The CRC covers the *stored* (packed) bytes: any flip in a packed sealed
  // segment must fail verify(), exactly like the raw sweep above.
  const auto dir = store_dir();
  {
    river::SegmentStoreOptions options;
    options.pack_payloads = true;
    river::SegmentedRecordLog log(dir, options);
    river::AudioSegmentArchiver archiver(log, 1000.0, 100);
    std::vector<float> xs(600);
    for (std::size_t i = 0; i < xs.size(); ++i) {
      xs[i] = quantize_pcm16(std::sin(static_cast<float>(i) * 0.01F));
    }
    archiver.push(xs);
    archiver.finish();
    log.close();
  }
  river::SegmentStoreReader reader(dir);
  ASSERT_TRUE(reader.verify());
  const auto path = dir / reader.segments()[0].name;

  testsupport::sweep_file_bit_flips(
      path,
      [&](std::size_t at) {
        std::string error;
        EXPECT_FALSE(reader.verify(&error)) << "flip at byte " << at;
      },
      // header flags: reserved, unchecked
      [](std::size_t at) { return at == 6 || at == 7; });
  EXPECT_TRUE(reader.verify());
}

TEST_F(SegmentStoreTest, DamagedOrTruncatedPackedStoreSurfacesAsLostNotCrash) {
  const auto dir = store_dir();
  {
    river::SegmentStoreOptions options;
    options.pack_payloads = true;
    river::SegmentedRecordLog log(dir, options);
    river::AudioSegmentArchiver archiver(log, 1000.0, 100);
    archiver.push(ramp(2000));
    archiver.finish();
    log.close();
  }
  river::SegmentStoreReader probe(dir);
  const auto path = dir / probe.segments()[0].name;
  const auto pristine_size = fs::file_size(path);

  std::vector<char> pristine;
  {
    std::ifstream in(path, std::ios::binary);
    pristine.assign(std::istreambuf_iterator<char>(in),
                    std::istreambuf_iterator<char>());
  }

  {  // bit-flip drill, through both replay paths
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(200);
    const char x = 0x5A;
    f.write(&x, 1);
  }
  for (const bool prefetch : {true, false}) {
    river::ReplayOptions options;
    options.prefetch = prefetch;
    river::SegmentStoreSource source(dir, options);
    (void)drain(source, 256);
    EXPECT_FALSE(source.clean()) << "prefetch=" << prefetch;
    EXPECT_TRUE(source.exhausted()) << "prefetch=" << prefetch;
  }

  {  // truncate drill: a sealed segment cut mid-payload loses its footer
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(pristine.data(),
              static_cast<std::streamsize>(pristine_size / 2));
  }
  std::string error;
  EXPECT_FALSE(probe.verify(&error));
  EXPECT_FALSE(error.empty());
  river::SegmentStoreSource source(dir);
  (void)drain(source, 256);
  EXPECT_FALSE(source.clean());
  EXPECT_TRUE(source.exhausted());
}

// ---------------------------------------------------------------------------
// Background maintenance
// ---------------------------------------------------------------------------

TEST_F(SegmentStoreTest, MaintenanceRetiresAndCompactsHandsOff) {
  const auto dir = store_dir();
  river::SegmentedRecordLog log(dir);
  // 10 sealed segments, one per second: segment k spans [k, k + 0.8].
  for (std::uint64_t sec = 0; sec < 10; ++sec) {
    for (std::uint64_t i = 0; i < 5; ++i) {
      log.append(audio_record(sec * 5 + i, 32),
                 static_cast<double>(sec) + 0.2 * static_cast<double>(i));
    }
    log.seal_active();
  }

  river::MaintenanceOptions options;
  options.interval_seconds = 0.002;
  options.retain_seconds = 2.0;       // horizon: last_time() - 2.0 = 7.8
  options.compact_min_bytes = 1 << 20;
  river::SegmentedRecordLog::Maintenance::Stats stats;
  {
    river::SegmentedRecordLog::Maintenance maintenance(log, options);
    // Hands-off: no explicit retire/compact calls; wait for the thread.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    for (;;) {
      stats = maintenance.stats();
      if (stats.segments_retired >= 7 && stats.segments_merged >= 1) break;
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "maintenance made no progress: cycles=" << stats.cycles
          << " retired=" << stats.segments_retired
          << " merged=" << stats.segments_merged;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    maintenance.stop();
    stats = maintenance.stats();
  }
  EXPECT_GE(stats.cycles, 1U);
  EXPECT_GE(stats.segments_retired, 7U);
  EXPECT_LE(stats.segments_retired, 8U);
  EXPECT_GE(stats.segments_merged, 1U);
  EXPECT_GT(stats.bytes_processed, 0U);

  // The surviving tail is intact, merged, and still appendable.
  log.append(audio_record(100, 32), 20.0);
  log.close();
  river::SegmentStoreReader reader(dir);
  std::string error;
  EXPECT_TRUE(reader.verify(&error)) << error;
  auto cursor = reader.seek(0.0);
  const auto got = drain_cursor(cursor);
  ASSERT_GE(got.size(), 11U);  // >= 2 surviving seconds + the new append
  EXPECT_EQ(got.back().sequence, 100U);
  for (std::size_t i = 1; i < got.size(); ++i) {
    EXPECT_GT(got[i].sequence, got[i - 1].sequence);
  }
}

TEST_F(SegmentStoreTest, SchedulerReplayStationMatchesLiveExtraction) {
  const auto params = small_params();
  const auto xs = random_signal_with_events(60000, 29);
  const auto want = core::EnsembleExtractor(params).extract(xs);
  ASSERT_FALSE(want.ensembles.empty());

  const auto dir = store_dir();
  {
    river::SegmentStoreOptions options;
    options.max_segment_bytes = 64 << 10;
    river::SegmentedRecordLog log(dir, options);
    river::AudioSegmentArchiver archiver(log, 21600.0, 900);
    archiver.push(xs);
    archiver.finish();
    log.close();
  }

  core::SessionScheduler scheduler;
  auto sink = std::make_shared<river::CollectingEnsembleSink>();
  core::StationConfig config;
  config.params = params;
  const auto id = core::add_replay_station(scheduler, "backfill", dir, 0.0,
                                           kInf, sink, config);
  EXPECT_EQ(scheduler.station_name(id), "backfill");
  scheduler.run();

  expect_same_ensembles(sink->ensembles, want.ensembles, "scheduler replay");
  const auto stats = scheduler.stats();
  ASSERT_EQ(stats.stations.size(), 1U);
  EXPECT_TRUE(stats.stations[0].finished);
  EXPECT_EQ(stats.stations[0].samples_dropped, 0U);
}
