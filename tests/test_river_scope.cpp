// Scope grammar: nesting validation, forced closure, error detection.
#include <gtest/gtest.h>

#include "river/scope.hpp"

namespace river = dynriver::river;
using river::Record;
using river::ScopeTracker;

TEST(ScopeTracker, WellFormedNesting) {
  ScopeTracker tracker;
  tracker.observe(Record::open_scope(river::kScopeClip, 0));
  EXPECT_EQ(tracker.depth(), 1u);
  tracker.observe(Record::open_scope(river::kScopeEnsemble, 1));
  EXPECT_EQ(tracker.depth(), 2u);
  tracker.observe(Record::data(river::kSubtypeAudio, {1.0F}));
  tracker.observe(Record::close_scope(river::kScopeEnsemble, 1));
  tracker.observe(Record::close_scope(river::kScopeClip, 0));
  EXPECT_EQ(tracker.depth(), 0u);
  EXPECT_FALSE(tracker.any_open());
}

TEST(ScopeTracker, DataAllowedAtAnyDepth) {
  ScopeTracker tracker;
  tracker.observe(Record::data(river::kSubtypeAudio, {1.0F}));  // unscoped
  tracker.observe(Record::open_scope(river::kScopeClip, 0));
  tracker.observe(Record::data(river::kSubtypeAudio, {1.0F}));
  EXPECT_EQ(tracker.depth(), 1u);
}

TEST(ScopeTracker, CloseWithoutOpenThrows) {
  ScopeTracker tracker;
  EXPECT_THROW(tracker.observe(Record::close_scope(river::kScopeClip, 0)),
               river::ScopeError);
}

TEST(ScopeTracker, WrongDepthThrows) {
  ScopeTracker tracker;
  tracker.observe(Record::open_scope(river::kScopeClip, 0));
  EXPECT_THROW(tracker.observe(Record::open_scope(river::kScopeEnsemble, 5)),
               river::ScopeError);
  EXPECT_THROW(tracker.observe(Record::close_scope(river::kScopeClip, 3)),
               river::ScopeError);
}

TEST(ScopeTracker, WrongTypeThrows) {
  ScopeTracker tracker;
  tracker.observe(Record::open_scope(river::kScopeClip, 0));
  EXPECT_THROW(tracker.observe(Record::close_scope(river::kScopeEnsemble, 0)),
               river::ScopeError);
}

TEST(ScopeTracker, BadCloseAcceptedLikeClose) {
  ScopeTracker tracker;
  tracker.observe(Record::open_scope(river::kScopeClip, 0));
  tracker.observe(Record::bad_close_scope(river::kScopeClip, 0));
  EXPECT_EQ(tracker.depth(), 0u);
}

TEST(ScopeTracker, ForceCloseEmitsInnermostFirst) {
  ScopeTracker tracker;
  tracker.observe(Record::open_scope(river::kScopeClip, 0));
  tracker.observe(Record::open_scope(river::kScopeEnsemble, 1));
  tracker.observe(Record::open_scope(river::kUserScopeTypeBase + 7, 2));

  const auto closes = tracker.force_close_all();
  ASSERT_EQ(closes.size(), 3u);
  EXPECT_EQ(closes[0].type, river::RecordType::kBadCloseScope);
  EXPECT_EQ(closes[0].scope_type, river::kUserScopeTypeBase + 7);
  EXPECT_EQ(closes[0].scope_depth, 2u);
  EXPECT_EQ(closes[1].scope_type, river::kScopeEnsemble);
  EXPECT_EQ(closes[1].scope_depth, 1u);
  EXPECT_EQ(closes[2].scope_type, river::kScopeClip);
  EXPECT_EQ(closes[2].scope_depth, 0u);
  EXPECT_FALSE(tracker.any_open());

  // The synthesized closes must themselves form a valid continuation.
  ScopeTracker verifier;
  verifier.observe(Record::open_scope(river::kScopeClip, 0));
  verifier.observe(Record::open_scope(river::kScopeEnsemble, 1));
  verifier.observe(Record::open_scope(river::kUserScopeTypeBase + 7, 2));
  for (const auto& rec : closes) verifier.observe(rec);
  EXPECT_FALSE(verifier.any_open());
}

TEST(ScopeTracker, ForceCloseOnEmptyIsEmpty) {
  ScopeTracker tracker;
  EXPECT_TRUE(tracker.force_close_all().empty());
}

TEST(ScopeTracker, OpenScopesExposed) {
  ScopeTracker tracker;
  tracker.observe(Record::open_scope(river::kScopeClip, 0));
  tracker.observe(Record::open_scope(river::kScopeEnsemble, 1));
  const auto& open = tracker.open_scopes();
  ASSERT_EQ(open.size(), 2u);
  EXPECT_EQ(open[0], river::kScopeClip);
  EXPECT_EQ(open[1], river::kScopeEnsemble);
}
