// Golden end-to-end extraction: a fixed-seed station clip with five planted
// songs must always yield the same ensembles and land on the paper's ~80%
// data reduction (Kasten, McKinley & Gage report 80.6%).
//
// Boundaries are asserted within a small tolerance rather than exactly:
// the trigger threshold sits on floating-point accumulations whose last
// few ULPs may differ across compilers and libm versions, which can shift
// an onset by a handful of samples, never by a syllable.
#include <gtest/gtest.h>

#include "core/extractor.hpp"
#include "core/params.hpp"
#include "synth/station.hpp"
#include "test_support.hpp"

namespace core = dynriver::core;
namespace synth = dynriver::synth;

namespace {

constexpr std::uint64_t kGoldenSeed = 11;

/// Golden ensemble boundaries for kGoldenSeed (samples at 21.6 kHz).
struct GoldenEnsemble {
  std::size_t start;
  std::size_t end;
};
constexpr GoldenEnsemble kGolden[] = {
    {102946, 132726},
    {206426, 243499},
    {285414, 308885},
    {346764, 369741},
    {412769, 429112},
};

/// ±0.11 s: generous against float/libm drift, far below syllable scale.
constexpr std::size_t kBoundaryTolerance = 2400;

synth::ClipRecording golden_clip() {
  return dynriver::testsupport::record_station_clip(
      kGoldenSeed,
      {synth::SpeciesId::kNOCA, synth::SpeciesId::kTUTI,
       synth::SpeciesId::kBCCH, synth::SpeciesId::kMODO,
       synth::SpeciesId::kRWBL});
}

void expect_near_sample(std::size_t actual, std::size_t expected,
                        const char* what, std::size_t index) {
  const std::size_t diff =
      actual > expected ? actual - expected : expected - actual;
  EXPECT_LE(diff, kBoundaryTolerance)
      << what << " of ensemble " << index << ": got " << actual
      << ", golden " << expected;
}

}  // namespace

TEST(GoldenExtraction, EnsembleCountAndBoundaries) {
  const auto clip = golden_clip();
  const core::EnsembleExtractor extractor((core::PipelineParams()));
  const auto result = extractor.extract(clip.clip.samples);

  ASSERT_EQ(result.ensembles.size(), std::size(kGolden));
  for (std::size_t i = 0; i < std::size(kGolden); ++i) {
    expect_near_sample(result.ensembles[i].start_sample, kGolden[i].start,
                       "start", i);
    expect_near_sample(result.ensembles[i].end_sample(), kGolden[i].end,
                       "end", i);
  }
}

TEST(GoldenExtraction, EveryPlantedSongIsCovered) {
  const auto clip = golden_clip();
  const core::EnsembleExtractor extractor((core::PipelineParams()));
  const auto result = extractor.extract(clip.clip.samples);

  ASSERT_EQ(clip.truth.size(), std::size(kGolden));
  for (const auto& t : clip.truth) {
    bool covered = false;
    for (const auto& e : result.ensembles) {
      if (synth::intervals_overlap(e.start_sample, e.end_sample(),
                                   t.start_sample, t.end_sample(), 0.5)) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << "planted song at " << t.start_sample
                         << " not covered by any ensemble";
  }
}

TEST(GoldenExtraction, ReductionMatchesPaper) {
  const auto clip = golden_clip();
  const core::EnsembleExtractor extractor((core::PipelineParams()));
  const auto result = extractor.extract(clip.clip.samples);

  // Paper, Table 1: 80.6% reduction. The golden clip measures 0.7999.
  const double reduction = result.reduction_fraction(clip.clip.samples.size());
  EXPECT_NEAR(reduction, 0.806, 0.05);

  // Determinism: a second extraction of the same clip is bit-identical.
  const auto again = extractor.extract(clip.clip.samples);
  ASSERT_EQ(again.ensembles.size(), result.ensembles.size());
  for (std::size_t i = 0; i < result.ensembles.size(); ++i) {
    EXPECT_EQ(again.ensembles[i].start_sample,
              result.ensembles[i].start_sample);
    EXPECT_EQ(again.ensembles[i].end_sample(), result.ensembles[i].end_sample());
  }
  EXPECT_EQ(again.retained_samples(), result.retained_samples());
}
