// StreamSession / MultiStreamSession: the streaming extraction contract.
//
// The load-bearing property: for EVERY chunking of the input — including
// 1-sample pushes — the session's ensembles, scores, and trigger series are
// byte-identical to EnsembleExtractor::extract (which is itself a wrapper
// over a session, so this also pins batch == streaming). Plus: bounded
// buffering, eager emission, ring taps, reset, and the multi-channel
// counterpart against MultiStreamExtractor.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "core/extractor.hpp"
#include "core/multistream.hpp"
#include "core/stream_session.hpp"
#include "river/sample_io.hpp"
#include "test_support.hpp"

namespace core = dynriver::core;
namespace river = dynriver::river;
namespace synth = dynriver::synth;
namespace testsupport = dynriver::testsupport;

namespace {

/// Parameters scaled down so short synthetic signals exercise every state
/// transition (trigger, hold, merge, floor) quickly.
core::PipelineParams small_params() {
  core::PipelineParams params;
  params.anomaly = {.window = 50, .alphabet = 6, .level = 2,
                    .ma_window = 400, .frame = 8};
  params.trigger_min_baseline = 1500;
  params.trigger_hold_samples = 300;
  params.min_ensemble_samples = 600;
  params.merge_gap_samples = 2000;
  return params;
}

std::vector<float> random_signal_with_events(std::size_t n, unsigned seed) {
  // Noise with two burst events (and whatever else the trigger finds).
  auto xs = testsupport::noise_with_bursts(n, n / 4, n / 8, seed);
  const auto second = testsupport::noise_with_bursts(n, (3 * n) / 5, n / 10,
                                                     seed + 1);
  for (std::size_t i = (3 * n) / 5; i < std::min(n, (3 * n) / 5 + n / 10); ++i) {
    xs[i] += second[i] * 0.5F;
  }
  return xs;
}

/// Stream `xs` through a fresh session in `chunk`-sized pushes (0 = whole
/// clip), draining after every push, and return everything extract returns.
core::ExtractionResult stream_in_chunks(const core::PipelineParams& params,
                                        std::span<const float> xs,
                                        std::size_t chunk) {
  core::SessionOptions options;
  options.tap_capacity = core::SignalTap::kUnbounded;
  core::StreamSession session(params, std::move(options));

  core::ExtractionResult result;
  std::size_t pos = 0;
  while (pos < xs.size()) {
    const std::size_t n = chunk == 0 ? xs.size() : std::min(chunk, xs.size() - pos);
    session.push(xs.subspan(pos, n));
    for (auto& e : session.drain()) result.ensembles.push_back(std::move(e));
    pos += n;
  }
  for (auto& e : session.finish()) result.ensembles.push_back(std::move(e));
  result.scores = session.tap().scores();
  result.trigger = session.tap().trigger();
  return result;
}

void expect_identical(const core::ExtractionResult& got,
                      const core::ExtractionResult& want, std::size_t chunk) {
  ASSERT_EQ(got.ensembles.size(), want.ensembles.size()) << "chunk=" << chunk;
  for (std::size_t i = 0; i < got.ensembles.size(); ++i) {
    EXPECT_EQ(got.ensembles[i].start_sample, want.ensembles[i].start_sample)
        << "chunk=" << chunk << " ensemble=" << i;
    // Byte-identical samples: the cuts are copies of the same input.
    ASSERT_EQ(got.ensembles[i].samples, want.ensembles[i].samples)
        << "chunk=" << chunk << " ensemble=" << i;
  }
  // Byte-identical score + trigger series (float equality, no tolerance).
  ASSERT_EQ(got.scores, want.scores) << "chunk=" << chunk;
  ASSERT_EQ(got.trigger, want.trigger) << "chunk=" << chunk;
}

}  // namespace

TEST(StreamSession, ChunkSweepBitIdenticalToBatchExtract) {
  const auto params = small_params();
  const core::EnsembleExtractor extractor(params);

  for (const unsigned seed : {11U, 29U, 47U}) {
    const auto xs = random_signal_with_events(60000, seed);
    const auto want = extractor.extract(xs, /*keep_signals=*/true);
    ASSERT_FALSE(want.ensembles.empty()) << "seed=" << seed
        << " (signal must exercise the cutter)";

    for (const std::size_t chunk : {std::size_t{1}, std::size_t{7},
                                    std::size_t{256}, std::size_t{900},
                                    std::size_t{0} /* whole clip */}) {
      expect_identical(stream_in_chunks(params, xs, chunk), want, chunk);
    }
  }
}

TEST(StreamSession, ChunkSweepOnStationClip) {
  // The paper's configuration on a real synthesized field clip.
  const auto clip = testsupport::record_station_clip(
      11, {synth::SpeciesId::kNOCA, synth::SpeciesId::kRWBL});
  const core::PipelineParams params;
  const core::EnsembleExtractor extractor(params);
  const auto want = extractor.extract(clip.clip.samples, /*keep_signals=*/true);
  ASSERT_FALSE(want.ensembles.empty());

  for (const std::size_t chunk :
       {std::size_t{256}, std::size_t{900}, std::size_t{0}}) {
    expect_identical(stream_in_chunks(params, clip.clip.samples, chunk), want,
                     chunk);
  }
}

TEST(StreamSession, EnsemblesEmitEagerly) {
  // Every ensemble whose merge gap has elapsed is available BEFORE finish().
  const auto params = small_params();
  const auto xs = random_signal_with_events(60000, 11);
  const auto want = core::EnsembleExtractor(params).extract(xs);
  ASSERT_GE(want.ensembles.size(), 2U);

  core::StreamSession session(params);
  session.push(xs);
  const auto before_finish = session.drain();
  // All but possibly the last (still inside merge-gap lookahead) are out.
  EXPECT_GE(before_finish.size() + 1, want.ensembles.size());
  EXPECT_FALSE(before_finish.empty());

  // And the first ensemble is available as soon as its gap elapses, not at
  // end of signal: push exactly up to first end + gap + 1, then check.
  core::StreamSession early(params);
  const std::size_t horizon = want.ensembles.front().end_sample() +
                              params.merge_gap_samples + 1;
  ASSERT_LT(horizon, xs.size());
  early.push(std::span<const float>(xs.data(), horizon));
  const auto first = early.drain();
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first.front().start_sample, want.ensembles.front().start_sample);
  EXPECT_EQ(first.front().samples, want.ensembles.front().samples);
}

TEST(StreamSession, BufferingIsBoundedByEnsembleAndGap) {
  const auto params = small_params();
  const auto xs = random_signal_with_events(120000, 5);
  const auto want = core::EnsembleExtractor(params).extract(xs);

  std::size_t longest = params.min_ensemble_samples;
  for (const auto& e : want.ensembles) longest = std::max(longest, e.length());

  constexpr std::size_t kChunk = 256;
  core::StreamSession session(params);
  const std::span<const float> span(xs);
  std::size_t peak = 0;
  std::size_t pos = 0;
  while (pos < xs.size()) {
    const std::size_t n = std::min(kChunk, xs.size() - pos);
    session.push(span.subspan(pos, n));
    (void)session.drain();
    peak = std::max(peak, session.buffered_samples());
    pos += n;
  }
  (void)session.finish();

  // Open ensemble + merge-gap lookahead + one chunk of slack (a completed
  // cut rests in the ready queue until the post-push drain), never O(stream).
  EXPECT_LE(peak, longest + params.merge_gap_samples + 2 * kChunk +
                      params.min_ensemble_samples);
  EXPECT_LT(peak, xs.size() / 4);
  EXPECT_EQ(session.buffered_samples(), 0U);  // drained after finish
}

TEST(StreamSession, RingTapKeepsRecentWindow) {
  const auto params = small_params();
  const auto xs = random_signal_with_events(30000, 3);
  const auto want = core::EnsembleExtractor(params).extract(xs, true);

  constexpr std::size_t kCapacity = 1024;
  core::SessionOptions options;
  options.tap_capacity = kCapacity;
  core::StreamSession session(params, std::move(options));
  session.push(xs);
  (void)session.finish();

  const auto& tap = session.tap();
  EXPECT_EQ(tap.end_index(), xs.size());
  EXPECT_EQ(tap.size(), kCapacity);
  EXPECT_EQ(tap.first_index(), xs.size() - kCapacity);

  const auto scores = tap.scores();
  const auto trigger = tap.trigger();
  for (std::size_t i = 0; i < kCapacity; ++i) {
    EXPECT_EQ(scores[i], want.scores[tap.first_index() + i]) << i;
    EXPECT_EQ(trigger[i], want.trigger[tap.first_index() + i]) << i;
  }
}

TEST(StreamSession, DisabledTapBuffersNothing) {
  const auto params = small_params();
  const auto xs = random_signal_with_events(30000, 3);
  core::StreamSession session(params);  // tap_capacity = 0
  session.push(xs);
  (void)session.finish();
  EXPECT_FALSE(session.tap().enabled());
  EXPECT_EQ(session.tap().size(), 0U);
  EXPECT_EQ(session.tap().end_index(), 0U);  // nothing even counted
}

TEST(StreamSession, OnSignalObserverSeesBatchSeries) {
  const auto params = small_params();
  const auto xs = random_signal_with_events(20000, 9);
  const auto want = core::EnsembleExtractor(params).extract(xs, true);

  std::vector<float> scores;
  std::vector<std::uint8_t> trigger;
  std::size_t next_index = 0;
  core::SessionOptions options;
  options.on_signal = [&](std::size_t i, float score, bool trig) {
    EXPECT_EQ(i, next_index++);
    scores.push_back(score);
    trigger.push_back(trig ? 1 : 0);
  };
  core::StreamSession session(params, std::move(options));
  for (std::size_t pos = 0; pos < xs.size(); pos += 333) {
    session.push(std::span<const float>(xs).subspan(
        pos, std::min<std::size_t>(333, xs.size() - pos)));
  }
  (void)session.finish();
  EXPECT_EQ(scores, want.scores);
  EXPECT_EQ(trigger, want.trigger);
}

TEST(StreamSession, ResetStartsAFreshStream) {
  const auto params = small_params();
  const auto xs = random_signal_with_events(40000, 21);
  const auto want = core::EnsembleExtractor(params).extract(xs);

  core::StreamSession session(params);
  // Pollute with an unrelated stream, then reset.
  session.push(random_signal_with_events(12345, 99));
  session.reset();
  EXPECT_EQ(session.samples_consumed(), 0U);

  session.push(xs);
  const auto ensembles = session.finish();
  ASSERT_EQ(ensembles.size(), want.ensembles.size());
  for (std::size_t i = 0; i < ensembles.size(); ++i) {
    EXPECT_EQ(ensembles[i].start_sample, want.ensembles[i].start_sample);
    EXPECT_EQ(ensembles[i].samples, want.ensembles[i].samples);
  }
}

TEST(StreamSession, FinishCutsTheOpenTailRun) {
  // A burst that runs to the very end of the stream: the run is still open
  // at finish(), which must close it exactly like the batch path.
  const auto params = small_params();
  auto xs = random_signal_with_events(40000, 13);
  const auto tail = testsupport::noise_with_bursts(40000, 32000, 8000, 17);
  for (std::size_t i = 32000; i < 40000; ++i) xs[i] += tail[i];

  const auto want = core::EnsembleExtractor(params).extract(xs);
  ASSERT_FALSE(want.ensembles.empty());
  ASSERT_GT(want.ensembles.back().end_sample(), 39000U)
      << "tail burst must keep the trigger active near the end";

  expect_identical(stream_in_chunks(params, xs, 256),
                   core::EnsembleExtractor(params).extract(xs, true), 256);
}

TEST(StreamSession, FeaturizeMatchesExtractorFeaturize) {
  const auto clip = testsupport::record_station_clip(
      7, {synth::SpeciesId::kBCCH});
  const core::PipelineParams params;
  const core::EnsembleExtractor extractor(params);
  const auto want = extractor.extract(clip.clip.samples);
  ASSERT_FALSE(want.ensembles.empty());

  core::StreamSession session(params);
  session.push(clip.clip.samples);
  const auto ensembles = session.finish();
  ASSERT_EQ(ensembles.size(), want.ensembles.size());
  for (std::size_t i = 0; i < ensembles.size(); ++i) {
    EXPECT_EQ(session.featurize(ensembles[i]),
              extractor.featurize(want.ensembles[i]));
  }
}

// ---------------------------------------------------------------------------
// Live reconfiguration
// ---------------------------------------------------------------------------

TEST(StreamSession, ReconfigureToSameParamsIsIdentity) {
  // Re-applying the current parameters at arbitrary mid-stream points —
  // including mid-ensemble, where application defers to the boundary —
  // must change nothing at all.
  const auto params = small_params();
  const auto xs = random_signal_with_events(60000, 11);
  const auto want =
      core::EnsembleExtractor(params).extract(xs, /*keep_signals=*/true);
  ASSERT_FALSE(want.ensembles.empty());

  core::SessionOptions options;
  options.tap_capacity = core::SignalTap::kUnbounded;
  core::StreamSession session(params, std::move(options));
  core::ExtractionResult got;
  constexpr std::size_t kChunk = 700;
  std::size_t pushes = 0;
  for (std::size_t pos = 0; pos < xs.size(); pos += kChunk) {
    if (++pushes % 5 == 0) session.reconfigure(params);
    session.push(std::span<const float>(xs).subspan(
        pos, std::min(kChunk, xs.size() - pos)));
    for (auto& e : session.drain()) got.ensembles.push_back(std::move(e));
  }
  for (auto& e : session.finish()) got.ensembles.push_back(std::move(e));
  got.scores = session.tap().scores();
  got.trigger = session.tap().trigger();
  expect_identical(got, want, kChunk);
}

TEST(StreamSession, ReconfigureAtQuietBoundaryEqualsRestartWithNewParams) {
  // The headline equivalence: reconfiguring at an ensemble boundary is the
  // same as having restarted with the new parameters at that point. With a
  // trigger-quiet prefix (identical scorer + baseline state under either
  // parameter set), that reduces to: session(P1) + reconfigure(P2) after
  // the prefix == session(P2) from the start — bit-identically.
  const auto p1 = small_params();
  auto p2 = p1;
  p2.merge_gap_samples = 1000;
  p2.min_ensemble_samples = 900;
  p2.trigger_hold_samples = 500;
  ASSERT_TRUE(core::reconfigure_compatible(p1, p2));

  const std::size_t kPrefix = 20000;
  auto xs = testsupport::noise_with_bursts(80000, 0, 0, 51);  // pure noise...
  const auto events = random_signal_with_events(60000, 52);   // ...then events
  for (std::size_t i = 0; i < events.size(); ++i) xs[kPrefix + i] = events[i];

  // Reference: fresh session under P2 for the whole stream.
  core::SessionOptions tap_all;
  tap_all.tap_capacity = core::SignalTap::kUnbounded;
  core::StreamSession restart(p2, tap_all);
  restart.push(xs);
  const auto want = restart.finish();
  ASSERT_FALSE(want.empty());
  // Premise: the prefix never triggers (so P1 vs P2 cannot diverge there).
  const auto trigger = restart.tap().trigger();
  for (std::size_t i = 0; i < kPrefix; ++i) {
    ASSERT_EQ(trigger[i], 0) << "prefix must stay quiet at " << i;
  }

  core::StreamSession session(p1);
  session.push(std::span<const float>(xs.data(), kPrefix));
  session.reconfigure(p2);
  // The automaton is between ensembles: the new rules land immediately.
  EXPECT_FALSE(session.reconfigure_pending());
  EXPECT_EQ(session.params().merge_gap_samples, p2.merge_gap_samples);
  session.push(std::span<const float>(xs.data() + kPrefix,
                                      xs.size() - kPrefix));
  const auto got = session.finish();

  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].start_sample, want[i].start_sample) << i;
    ASSERT_EQ(got[i].samples, want[i].samples) << i;
  }
}

TEST(StreamSession, ReconfigureMidEnsembleDefersUntilBoundary) {
  // A reconfigure issued while an ensemble is open must not lose or
  // re-judge it: the in-flight ensemble completes under the old rules, and
  // the new rules only govern what follows.
  const auto p1 = small_params();
  const auto xs = random_signal_with_events(60000, 11);
  const auto want = core::EnsembleExtractor(p1).extract(xs);
  ASSERT_GE(want.ensembles.size(), 2U);

  auto p2 = p1;
  p2.min_ensemble_samples = 50000;  // suppress everything after the boundary
  p2.merge_gap_samples = 500;
  for (const auto& e : want.ensembles) ASSERT_LT(e.length(), 50000U);

  const auto& first = want.ensembles.front();
  const std::size_t mid = first.start_sample + first.length() / 2;
  core::StreamSession session(p1);
  session.push(std::span<const float>(xs.data(), mid));
  session.reconfigure(p2);
  EXPECT_TRUE(session.reconfigure_pending());  // ensemble open: deferred
  EXPECT_EQ(session.params().min_ensemble_samples, p1.min_ensemble_samples);
  session.push(std::span<const float>(xs.data() + mid, xs.size() - mid));
  const auto got = session.finish();
  EXPECT_FALSE(session.reconfigure_pending());
  EXPECT_EQ(session.params().min_ensemble_samples, p2.min_ensemble_samples);

  // The open ensemble survived, bit-identically; the new floor ate the rest.
  ASSERT_EQ(got.size(), 1U);
  EXPECT_EQ(got.front().start_sample, first.start_sample);
  ASSERT_EQ(got.front().samples, first.samples);
}

// ---------------------------------------------------------------------------
// MultiStreamSession
// ---------------------------------------------------------------------------

namespace {

std::vector<float> perturbed_channel(const std::vector<float>& base,
                                     unsigned seed) {
  std::mt19937 gen(seed);
  std::normal_distribution<float> noise(0.0F, 0.002F);
  std::vector<float> out(base.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    out[i] = 0.9F * base[i] + noise(gen);
  }
  return out;
}

}  // namespace

TEST(MultiStreamSession, ChunkSweepBitIdenticalToMultiExtractor) {
  core::MultiStreamParams mp;
  mp.base = small_params();
  mp.score_threads = 1;
  const core::MultiStreamExtractor extractor(mp);

  const auto a = random_signal_with_events(60000, 31);
  const auto b = perturbed_channel(a, 32);
  const std::vector<std::span<const float>> streams = {a, b};
  const auto want = extractor.extract(streams, /*keep_signals=*/true);
  ASSERT_FALSE(want.ensembles.empty());

  for (const std::size_t chunk :
       {std::size_t{1}, std::size_t{256}, std::size_t{900}, std::size_t{0}}) {
    core::SessionOptions options;
    options.tap_capacity = core::SignalTap::kUnbounded;
    core::MultiStreamSession session(mp, streams.size(), std::move(options));

    std::vector<core::MultiEnsemble> got;
    std::size_t pos = 0;
    while (pos < a.size()) {
      const std::size_t n = chunk == 0 ? a.size() : std::min(chunk, a.size() - pos);
      const std::vector<std::span<const float>> chunks = {
          std::span<const float>(a).subspan(pos, n),
          std::span<const float>(b).subspan(pos, n)};
      session.push(chunks);
      for (auto& e : session.drain()) got.push_back(std::move(e));
      pos += n;
    }
    for (auto& e : session.finish()) got.push_back(std::move(e));

    ASSERT_EQ(got.size(), want.ensembles.size()) << "chunk=" << chunk;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].start_sample, want.ensembles[i].start_sample);
      EXPECT_EQ(got[i].length, want.ensembles[i].length);
      ASSERT_EQ(got[i].channel_samples, want.ensembles[i].channel_samples);
    }
    ASSERT_EQ(session.tap().scores(), want.fused_scores) << "chunk=" << chunk;
  }
}

TEST(MultiStreamSession, ThreadedExtractorStillBitIdentical) {
  // The extractor's pre-scored path drives the session via push_scored; it
  // must agree with the serial (lockstep push) path exactly.
  core::MultiStreamParams serial;
  serial.base = small_params();
  serial.score_threads = 1;
  core::MultiStreamParams threaded = serial;
  threaded.score_threads = 2;

  const auto a = random_signal_with_events(60000, 41);
  const auto b = perturbed_channel(a, 42);
  const std::vector<std::span<const float>> streams = {a, b};

  const auto s = core::MultiStreamExtractor(serial).extract(streams, true);
  const auto t = core::MultiStreamExtractor(threaded).extract(streams, true);
  ASSERT_EQ(s.ensembles.size(), t.ensembles.size());
  for (std::size_t i = 0; i < s.ensembles.size(); ++i) {
    EXPECT_EQ(s.ensembles[i].start_sample, t.ensembles[i].start_sample);
    ASSERT_EQ(s.ensembles[i].channel_samples, t.ensembles[i].channel_samples);
  }
  ASSERT_EQ(s.fused_scores, t.fused_scores);
}

// ---------------------------------------------------------------------------
// run_stream pump
// ---------------------------------------------------------------------------

TEST(RunStream, PumpsSourceToSinkWithStats) {
  const auto params = small_params();
  const auto xs = random_signal_with_events(60000, 11);
  const auto want = core::EnsembleExtractor(params).extract(xs);

  core::StreamSession session(params);
  river::BufferSource source(xs, params.sample_rate);
  river::CollectingEnsembleSink sink;
  const auto stats = core::run_stream(source, session, sink, 512);

  EXPECT_EQ(stats.samples_in, xs.size());
  EXPECT_EQ(stats.ensembles_out, want.ensembles.size());
  EXPECT_GT(stats.peak_buffered_samples, 0U);
  EXPECT_LT(stats.peak_buffered_samples, xs.size());
  ASSERT_EQ(sink.ensembles.size(), want.ensembles.size());
  for (std::size_t i = 0; i < sink.ensembles.size(); ++i) {
    EXPECT_EQ(sink.ensembles[i].start_sample, want.ensembles[i].start_sample);
    EXPECT_EQ(sink.ensembles[i].samples, want.ensembles[i].samples);
  }
}
