// Runtime semantics of the annotated locking primitives
// (common/thread_annotations.hpp). The annotations themselves are checked at
// compile time (Clang, -Werror=thread-safety; see tests/lint_negative.cpp);
// this suite pins down that the wrappers behave exactly like the std types
// they wrap: mutual exclusion, scoped release, manual unlock/relock, condvar
// wakeups and timed-wait timeouts.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "common/thread_annotations.hpp"

namespace common = dynriver::common;

TEST(ThreadAnnotations, LockGuardProvidesMutualExclusion) {
  common::Mutex mu;
  long counter = 0;  // DR_GUARDED_BY(mu) in spirit; local to the test

  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    workers.emplace_back([&] {
      for (int j = 0; j < kIters; ++j) {
        const common::LockGuard lock(mu);
        ++counter;
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIters);
}

TEST(ThreadAnnotations, TryLockFailsWhileHeldElsewhere) {
  common::Mutex mu;
  mu.lock();
  bool acquired = true;
  std::thread probe([&] { acquired = mu.try_lock(); });
  probe.join();
  EXPECT_FALSE(acquired);
  mu.unlock();

  std::thread probe2([&] {
    acquired = mu.try_lock();
    if (acquired) mu.unlock();
  });
  probe2.join();
  EXPECT_TRUE(acquired);
}

TEST(ThreadAnnotations, UniqueLockManualUnlockReleasesTheMutex) {
  common::Mutex mu;
  common::UniqueLock lock(mu);

  // While held, another thread cannot take it...
  bool acquired = true;
  std::thread probe([&] {
    acquired = mu.try_lock();
    if (acquired) mu.unlock();
  });
  probe.join();
  EXPECT_FALSE(acquired);

  // ...after unlock() it can, and lock() reacquires for the dtor.
  lock.unlock();
  std::thread probe2([&] {
    acquired = mu.try_lock();
    if (acquired) mu.unlock();
  });
  probe2.join();
  EXPECT_TRUE(acquired);
  lock.lock();
}

TEST(ThreadAnnotations, CondVarWaitWakesOnNotify) {
  common::Mutex mu;
  common::CondVar cv;
  bool ready = false;

  std::thread producer([&] {
    const common::LockGuard lock(mu);
    ready = true;
    cv.notify_one();
  });

  {
    common::UniqueLock lock(mu);
    while (!ready) cv.wait(lock);
    EXPECT_TRUE(ready);
  }
  producer.join();
}

TEST(ThreadAnnotations, CondVarWaitUntilTimesOutWithoutNotify) {
  common::Mutex mu;
  common::CondVar cv;
  bool ready = false;

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(20);
  common::UniqueLock lock(mu);
  while (!ready) {
    if (cv.wait_until(lock, deadline) == std::cv_status::timeout) break;
  }
  EXPECT_FALSE(ready);
  EXPECT_GE(std::chrono::steady_clock::now(), deadline);
}

TEST(ThreadAnnotations, CondVarWaitUntilSeesNotifyBeforeDeadline) {
  common::Mutex mu;
  common::CondVar cv;
  bool ready = false;

  std::thread producer([&] {
    const common::LockGuard lock(mu);
    ready = true;
    cv.notify_all();
  });

  // Generous deadline: the producer only needs the lock once.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  bool timed_out = false;
  {
    common::UniqueLock lock(mu);
    while (!ready) {
      if (cv.wait_until(lock, deadline) == std::cv_status::timeout) {
        timed_out = true;
        break;
      }
    }
  }
  producer.join();
  EXPECT_TRUE(ready);
  EXPECT_FALSE(timed_out);
}
