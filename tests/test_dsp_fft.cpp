// FFT correctness: radix-2 and Bluestein against the naive DFT, Parseval,
// impulse/sinusoid identities, inverse round-trips, bin geometry.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/contracts.hpp"
#include "dsp/fft.hpp"
#include "test_support.hpp"

namespace dsp = dynriver::dsp;
using dynriver::testsupport::max_abs_error;
using dynriver::testsupport::random_complex_signal;

TEST(FftBasics, PowerOfTwoDetection) {
  EXPECT_TRUE(dsp::is_power_of_two(1));
  EXPECT_TRUE(dsp::is_power_of_two(2));
  EXPECT_TRUE(dsp::is_power_of_two(1024));
  EXPECT_FALSE(dsp::is_power_of_two(0));
  EXPECT_FALSE(dsp::is_power_of_two(3));
  EXPECT_FALSE(dsp::is_power_of_two(900));
}

TEST(FftBasics, NextPowerOfTwo) {
  EXPECT_EQ(dsp::next_power_of_two(1), 1u);
  EXPECT_EQ(dsp::next_power_of_two(2), 2u);
  EXPECT_EQ(dsp::next_power_of_two(3), 4u);
  EXPECT_EQ(dsp::next_power_of_two(900), 1024u);
  EXPECT_EQ(dsp::next_power_of_two(1801), 2048u);
}

TEST(FftBasics, EmptyInput) {
  EXPECT_TRUE(dsp::fft({}).empty());
  EXPECT_TRUE(dsp::ifft({}).empty());
}

TEST(FftBasics, ImpulseHasFlatSpectrum) {
  std::vector<dsp::Cplx> x(64, {0, 0});
  x[0] = {1, 0};
  const auto spec = dsp::fft(x);
  for (const auto& v : spec) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(FftBasics, PureToneConcentratesInOneBin) {
  constexpr std::size_t kN = 128;
  constexpr std::size_t kBin = 9;
  std::vector<float> x(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    x[i] = static_cast<float>(std::sin(2.0 * std::numbers::pi *
                                       static_cast<double>(kBin * i) /
                                       static_cast<double>(kN)));
  }
  const auto mags = dsp::magnitude_spectrum(x);
  EXPECT_NEAR(mags[kBin], kN / 2.0, 1e-3);
  EXPECT_NEAR(mags[kN - kBin], kN / 2.0, 1e-3);  // conjugate mirror
  for (std::size_t k = 0; k < kN; ++k) {
    if (k != kBin && k != kN - kBin) {
      EXPECT_LT(mags[k], 1e-6) << "bin " << k;
    }
  }
}

// Cross-check fft against the naive DFT over a mix of power-of-2 and odd
// lengths, including the pipeline's 900.
class FftVsNaive : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftVsNaive, MatchesNaiveDft) {
  const std::size_t n = GetParam();
  const auto x = random_complex_signal(n, static_cast<unsigned>(n));
  const auto fast = dsp::fft(x);
  const auto slow = dsp::dft_naive(x);
  EXPECT_LT(max_abs_error(fast, slow), 1e-7 * static_cast<double>(n)) << "n=" << n;
}

TEST_P(FftVsNaive, InverseRoundTrips) {
  const std::size_t n = GetParam();
  const auto x = random_complex_signal(n, static_cast<unsigned>(n) + 1000);
  const auto back = dsp::ifft(dsp::fft(x));
  EXPECT_LT(max_abs_error(back, x), 1e-9 * static_cast<double>(n)) << "n=" << n;
}

TEST_P(FftVsNaive, ParsevalHolds) {
  const std::size_t n = GetParam();
  const auto x = random_complex_signal(n, static_cast<unsigned>(n) + 2000);
  const auto spec = dsp::fft(x);
  double time_energy = 0.0;
  for (const auto& v : x) time_energy += std::norm(v);
  double freq_energy = 0.0;
  for (const auto& v : spec) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy,
              1e-8 * static_cast<double>(n) * std::max(1.0, time_energy));
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftVsNaive,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 16, 27, 64, 100,
                                           128, 225, 256, 337, 512, 900, 1024));

TEST(FftBins, BinFrequencyGeometry) {
  // 900-point transform at 21600 Hz: 24 Hz bins.
  EXPECT_DOUBLE_EQ(dsp::bin_frequency(0, 900, 21600.0), 0.0);
  EXPECT_DOUBLE_EQ(dsp::bin_frequency(1, 900, 21600.0), 24.0);
  EXPECT_DOUBLE_EQ(dsp::bin_frequency(50, 900, 21600.0), 1200.0);
  EXPECT_DOUBLE_EQ(dsp::bin_frequency(400, 900, 21600.0), 9600.0);
}

TEST(FftBins, FrequencyBinRoundTrip) {
  EXPECT_EQ(dsp::frequency_bin(1200.0, 900, 21600.0), 50u);
  EXPECT_EQ(dsp::frequency_bin(9600.0, 900, 21600.0), 400u);
  EXPECT_EQ(dsp::frequency_bin(1211.0, 900, 21600.0), 50u);  // rounds to nearest
  EXPECT_EQ(dsp::frequency_bin(1e9, 900, 21600.0), 899u);    // clamped
}

TEST(FftRadix2, RejectsNonPowerOfTwo) {
  std::vector<dsp::Cplx> x(900);
  EXPECT_THROW(dsp::fft_radix2(x, false), dynriver::ContractViolation);
}
