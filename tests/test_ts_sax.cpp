// SAX: inverse normal CDF accuracy, breakpoint equiprobability, the paper's
// Figure 4 example shape, MINDIST lower-bound property.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "common/contracts.hpp"
#include "ts/sax.hpp"
#include "ts/znorm.hpp"

namespace ts = dynriver::ts;

TEST(InverseNormalCdf, KnownQuantiles) {
  EXPECT_NEAR(ts::inverse_normal_cdf(0.5), 0.0, 1e-9);
  EXPECT_NEAR(ts::inverse_normal_cdf(0.8413447460685429), 1.0, 1e-6);
  EXPECT_NEAR(ts::inverse_normal_cdf(0.02275013194817921), -2.0, 1e-6);
  EXPECT_NEAR(ts::inverse_normal_cdf(0.9986501019683699), 3.0, 1e-6);
}

TEST(InverseNormalCdf, Symmetry) {
  for (const double p : {0.01, 0.1, 0.25, 0.4}) {
    EXPECT_NEAR(ts::inverse_normal_cdf(p), -ts::inverse_normal_cdf(1.0 - p), 1e-9);
  }
}

TEST(InverseNormalCdf, RejectsOutOfRange) {
  EXPECT_THROW((void)ts::inverse_normal_cdf(0.0), dynriver::ContractViolation);
  EXPECT_THROW((void)ts::inverse_normal_cdf(1.0), dynriver::ContractViolation);
}

TEST(SaxBreakpoints, KnownTableValues) {
  // Classic SAX lookup-table values (Lin et al.) for alphabet 4: -0.67, 0, 0.67.
  const auto b4 = ts::sax_breakpoints(4);
  ASSERT_EQ(b4.size(), 3u);
  EXPECT_NEAR(b4[0], -0.6745, 1e-3);
  EXPECT_NEAR(b4[1], 0.0, 1e-9);
  EXPECT_NEAR(b4[2], 0.6745, 1e-3);

  // Alphabet 8 (the paper's setting): -1.15, -0.67, -0.32, 0, 0.32, 0.67, 1.15.
  const auto b8 = ts::sax_breakpoints(8);
  ASSERT_EQ(b8.size(), 7u);
  EXPECT_NEAR(b8[0], -1.1503, 1e-3);
  EXPECT_NEAR(b8[3], 0.0, 1e-9);
  EXPECT_NEAR(b8[6], 1.1503, 1e-3);
}

TEST(SaxBreakpoints, MonotonicallyIncreasing) {
  for (std::size_t a = 2; a <= 20; ++a) {
    const auto b = ts::sax_breakpoints(a);
    ASSERT_EQ(b.size(), a - 1);
    for (std::size_t i = 1; i < b.size(); ++i) EXPECT_GT(b[i], b[i - 1]);
  }
}

// Gaussian data discretized against the breakpoints should hit each symbol
// with roughly equal probability -- SAX's defining property.
class SaxEquiprobability : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SaxEquiprobability, SymbolsAreEquiprobable) {
  const std::size_t alphabet = GetParam();
  std::mt19937 gen(1234);
  std::normal_distribution<float> dist(0.0F, 1.0F);
  constexpr std::size_t kN = 200000;
  std::vector<float> data(kN);
  for (auto& v : data) v = dist(gen);

  const auto breaks = ts::sax_breakpoints(alphabet);
  std::vector<std::size_t> counts(alphabet, 0);
  for (const float v : data) {
    ++counts[ts::discretize_value(v, breaks)];
  }
  const double expected = static_cast<double>(kN) / static_cast<double>(alphabet);
  for (std::size_t s = 0; s < alphabet; ++s) {
    EXPECT_NEAR(static_cast<double>(counts[s]), expected, expected * 0.05)
        << "symbol " << s << " alphabet " << alphabet;
  }
}

INSTANTIATE_TEST_SUITE_P(Alphabets, SaxEquiprobability,
                         ::testing::Values(2, 3, 4, 5, 8, 12, 16, 20));

TEST(SaxConversion, FullPipelineProducesExpectedLength) {
  std::vector<float> series(256);
  for (std::size_t i = 0; i < series.size(); ++i) {
    series[i] = static_cast<float>(std::sin(0.1 * static_cast<double>(i)));
  }
  const auto sax = ts::to_sax(series, {18, 5});
  EXPECT_EQ(sax.size(), 18u);
  for (const auto s : sax) EXPECT_LT(s, 5);
}

TEST(SaxConversion, ConstantSeriesMapsToMiddleSymbol) {
  // A constant series Z-normalizes to all zeros; with an even alphabet zero
  // sits exactly on the middle breakpoint and lands in the upper-middle bin.
  const std::vector<float> series(64, 3.14F);
  const auto sax = ts::to_sax(series, {8, 4});
  for (const auto s : sax) EXPECT_EQ(s, 2);
}

TEST(SaxToString, LettersAndIntegers) {
  const std::vector<ts::Symbol> syms = {0, 1, 4, 2};
  EXPECT_EQ(ts::sax_to_string(syms, 5), "abec");
  EXPECT_EQ(ts::sax_to_string(syms, 30), "1 2 5 3");
}

TEST(SaxMinDist, ZeroForAdjacentSymbols) {
  const std::vector<ts::Symbol> a = {0, 1, 2, 3};
  const std::vector<ts::Symbol> b = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(ts::sax_min_dist(a, b, 128, 5), 0.0);
}

TEST(SaxMinDist, LowerBoundsTrueDistance) {
  // MINDIST(A,B) <= Euclid(a,b) for z-normalized sequences (Lin et al.).
  std::mt19937 gen(99);
  std::normal_distribution<float> dist(0.0F, 1.0F);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<float> x(120), y(120);
    for (auto& v : x) v = dist(gen);
    for (auto& v : y) v = dist(gen);
    const auto zx = ts::znormalize(x);
    const auto zy = ts::znormalize(y);
    double true_dist = 0.0;
    for (std::size_t i = 0; i < zx.size(); ++i) {
      const double d = static_cast<double>(zx[i]) - static_cast<double>(zy[i]);
      true_dist += d * d;
    }
    true_dist = std::sqrt(true_dist);

    const auto sax_x = ts::to_sax(x, {12, 6});
    const auto sax_y = ts::to_sax(y, {12, 6});
    const double lower = ts::sax_min_dist(sax_x, sax_y, 120, 6);
    EXPECT_LE(lower, true_dist + 1e-9) << "trial " << trial;
  }
}

// The paper's Figure 4: an 18-segment PAA sequence mapped to alphabet 5,
// rendered as integers. We verify the published SAX string shape: values in
// [1,5] and transitions consistent with the discretization.
TEST(SaxFigure4, PaperExampleShape) {
  // Signal resembling Fig. 4's PAA profile (values in roughly [-2, 2]).
  const std::vector<float> paa_values = {-0.5F, 0.2F, -0.4F, 0.9F,  0.1F, 0.0F,
                                         0.05F, 0.7F, -1.8F, 1.9F,  0.0F, -1.7F,
                                         -0.6F, 0.8F, 1.0F,  0.15F, 0.9F, 0.1F};
  const auto breaks = ts::sax_breakpoints(5);
  const auto syms = ts::discretize(paa_values, breaks);
  ASSERT_EQ(syms.size(), 18u);
  // Extremes map to extreme symbols.
  EXPECT_EQ(syms[8], 0);  // -1.8 -> lowest region -> "1"
  EXPECT_EQ(syms[9], 4);  // +1.9 -> highest region -> "5"
  for (const auto s : syms) EXPECT_LT(s, 5);
}
