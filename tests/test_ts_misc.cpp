// Z-normalization, PAA properties (parameterized), discord and motif
// discovery on planted structures.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <random>

#include "common/contracts.hpp"
#include "ts/discord.hpp"
#include "ts/motif.hpp"
#include "ts/paa.hpp"
#include "ts/znorm.hpp"
#include "test_support.hpp"

namespace ts = dynriver::ts;

TEST(Znorm, ZeroMeanUnitVariance) {
  std::vector<float> xs = {1.0F, 5.0F, 3.0F, 7.0F, 4.0F, 2.0F};
  const auto z = ts::znormalize(xs);
  double mean = 0.0;
  for (const float v : z) mean += v;
  mean /= static_cast<double>(z.size());
  EXPECT_NEAR(mean, 0.0, 1e-6);
  double var = 0.0;
  for (const float v : z) var += (v - mean) * (v - mean);
  var /= static_cast<double>(z.size());
  EXPECT_NEAR(var, 1.0, 1e-5);
}

TEST(Znorm, ConstantSeriesBecomesZeros) {
  const auto z = ts::znormalize(std::vector<float>(10, 4.2F));
  for (const float v : z) EXPECT_FLOAT_EQ(v, 0.0F);
}

TEST(Znorm, ScaleAndOffsetInvariance) {
  std::vector<float> a = {1.0F, 2.0F, 5.0F, 3.0F};
  std::vector<float> b;
  for (const float v : a) b.push_back(v * 7.0F + 100.0F);
  const auto za = ts::znormalize(a);
  const auto zb = ts::znormalize(b);
  for (std::size_t i = 0; i < za.size(); ++i) EXPECT_NEAR(za[i], zb[i], 1e-4);
}

TEST(StreamingZnorm, ConvergesToBatchStatistics) {
  std::mt19937 gen(5);
  std::normal_distribution<float> dist(10.0F, 3.0F);
  ts::StreamingZnorm zn;
  for (int i = 0; i < 50000; ++i) (void)zn.push(dist(gen));
  EXPECT_NEAR(zn.mean(), 10.0, 0.1);
  EXPECT_NEAR(zn.stddev(), 3.0, 0.1);
}

class PaaProperties : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PaaProperties, MeanPreservedAndLengthCorrect) {
  const auto [n, w] = GetParam();
  if (w > n) GTEST_SKIP();
  std::mt19937 gen(static_cast<unsigned>(n * 1000 + w));
  std::uniform_real_distribution<float> dist(-5.0F, 5.0F);
  std::vector<float> series(static_cast<std::size_t>(n));
  for (auto& v : series) v = dist(gen);

  const auto reduced = ts::paa(series, static_cast<std::size_t>(w));
  ASSERT_EQ(reduced.size(), static_cast<std::size_t>(w));

  // PAA preserves the global mean (each sample contributes its full mass).
  double orig_mean = 0.0;
  for (const float v : series) orig_mean += v;
  orig_mean /= n;
  double paa_mean = 0.0;
  const double seg_len = static_cast<double>(n) / w;
  for (const float v : reduced) paa_mean += v * seg_len;
  paa_mean /= n;
  EXPECT_NEAR(paa_mean, orig_mean, 1e-4);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PaaProperties,
    ::testing::Combine(::testing::Values(10, 100, 128, 350, 900),
                       ::testing::Values(1, 5, 7, 10, 35, 128)));

TEST(Paa, EvenDivisionIsExactBlockMeans) {
  const std::vector<float> xs = {1.0F, 3.0F, 5.0F, 7.0F, 2.0F, 4.0F};
  const auto reduced = ts::paa(xs, 3);
  ASSERT_EQ(reduced.size(), 3u);
  EXPECT_FLOAT_EQ(reduced[0], 2.0F);
  EXPECT_FLOAT_EQ(reduced[1], 6.0F);
  EXPECT_FLOAT_EQ(reduced[2], 3.0F);
}

TEST(Paa, ReduceByFactorHandlesRemainder) {
  const std::vector<float> xs = {2.0F, 4.0F, 6.0F, 8.0F, 10.0F};
  const auto reduced = ts::paa_reduce_by(xs, 2);
  ASSERT_EQ(reduced.size(), 3u);
  EXPECT_FLOAT_EQ(reduced[0], 3.0F);
  EXPECT_FLOAT_EQ(reduced[1], 7.0F);
  EXPECT_FLOAT_EQ(reduced[2], 10.0F);  // lone tail sample
}

TEST(Paa, InverseExpandsPiecewiseConstant) {
  const std::vector<float> reduced = {1.0F, 2.0F};
  const auto expanded = ts::paa_inverse(reduced, 6);
  ASSERT_EQ(expanded.size(), 6u);
  EXPECT_FLOAT_EQ(expanded[0], 1.0F);
  EXPECT_FLOAT_EQ(expanded[2], 1.0F);
  EXPECT_FLOAT_EQ(expanded[3], 2.0F);
  EXPECT_FLOAT_EQ(expanded[5], 2.0F);
}

TEST(Paa, SmoothingReducesVariance) {
  std::mt19937 gen(3);
  std::normal_distribution<float> dist(0.0F, 1.0F);
  std::vector<float> noisy(1000);
  for (auto& v : noisy) v = dist(gen);
  const auto smooth = ts::paa_reduce_by(noisy, 10);
  double var_orig = 0.0;
  for (const float v : noisy) var_orig += v * v;
  var_orig /= static_cast<double>(noisy.size());
  double var_smooth = 0.0;
  for (const float v : smooth) var_smooth += v * v;
  var_smooth /= static_cast<double>(smooth.size());
  EXPECT_LT(var_smooth, var_orig * 0.3);  // ~1/10 in expectation
}

using dynriver::testsupport::periodic_with_anomaly;

TEST(Discord, BruteForceFindsPlantedAnomaly) {
  constexpr std::size_t kPeriod = 32;
  constexpr std::size_t kAnomalyAt = 400;
  const auto xs = periodic_with_anomaly(1024, kPeriod, kAnomalyAt);
  const auto result = ts::find_discord_brute(xs, kPeriod);
  // The discord window must overlap the planted anomaly.
  EXPECT_GT(result.index + kPeriod, kAnomalyAt);
  EXPECT_LT(result.index, kAnomalyAt + kPeriod);
  EXPECT_GT(result.distance, 0.0);
}

TEST(Discord, HotSaxAgreesWithBruteForce) {
  constexpr std::size_t kPeriod = 32;
  const auto xs = periodic_with_anomaly(768, kPeriod, 300);
  const auto brute = ts::find_discord_brute(xs, kPeriod);
  ts::HotSaxParams params;
  params.window = kPeriod;
  const auto hot = ts::find_discord_hotsax(xs, params);
  EXPECT_EQ(hot.index, brute.index);
  EXPECT_NEAR(hot.distance, brute.distance, 1e-9);
  // The heuristic must not do more work than brute force.
  EXPECT_LE(hot.calls, brute.calls);
}

TEST(Discord, RequiresLongEnoughSeries) {
  const std::vector<float> tiny(16, 1.0F);
  EXPECT_THROW((void)ts::find_discord_brute(tiny, 16),
               dynriver::ContractViolation);
}

TEST(Motif, FindsRepeatedPattern) {
  // Noise with two identical embedded shapes.
  std::mt19937 gen(17);
  std::normal_distribution<float> dist(0.0F, 0.3F);
  std::vector<float> xs(600);
  for (auto& v : xs) v = dist(gen);
  const auto shape = [](std::size_t k) {
    return static_cast<float>(2.0 * std::sin(0.5 * static_cast<double>(k)) +
                              static_cast<double>(k) * 0.05);
  };
  for (std::size_t k = 0; k < 50; ++k) {
    xs[100 + k] = shape(k);
    xs[400 + k] = shape(k);
  }
  ts::MotifParams params;
  params.window = 50;
  const auto motif = ts::find_motif_brute(xs, params);
  EXPECT_NEAR(static_cast<double>(motif.first), 100.0, 2.0);
  EXPECT_NEAR(static_cast<double>(motif.second), 400.0, 2.0);
  EXPECT_LT(motif.distance, 1.0);
  EXPECT_GE(motif.neighbors, 2u);
}

TEST(Motif, OccurrencesAreNonOverlapping) {
  std::vector<float> xs(300);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = static_cast<float>(std::sin(0.3 * static_cast<double>(i)));
  }
  const auto occurrences = ts::motif_occurrences(xs, 40, 0, 5.0);
  for (std::size_t i = 1; i < occurrences.size(); ++i) {
    EXPECT_GE(occurrences[i] - occurrences[i - 1], 40u);
  }
  EXPECT_GE(occurrences.size(), 2u);  // periodic signal recurs
}

TEST(SubsequenceDistance, IdenticalShapesAreZero) {
  std::vector<float> a(64), b(64);
  for (std::size_t i = 0; i < 64; ++i) {
    a[i] = static_cast<float>(std::sin(0.2 * static_cast<double>(i)));
    b[i] = a[i] * 5.0F + 3.0F;  // affine copy: same z-normalized shape
  }
  EXPECT_NEAR(ts::subsequence_distance(a, b), 0.0, 1e-4);
}
