// Tier-2 soak for the storage layer, at three stress points:
//
//   1. Recovery memory: scanning the valid prefix of a ~64 MB torn record
//      log must stream (bounded chunks), not slurp the file — pinned with a
//      peak-RSS (VmHWM) assertion. The regression this guards: the original
//      scan_valid_prefix read the whole file into one vector.
//   2. Rotation under sustained write with a reader racing the writer:
//      readers opened mid-write must always end cleanly (sealed segments +
//      synced tail), never throw, and observe monotonically non-decreasing
//      record counts.
//   3. Kill-and-recover drill: a forked writer dies via _exit (no stdio
//      flush, no seal — a genuine crash image); reopening the store must
//      seal the synced prefix and keep working.
//
// CI runs this suite under ASan+UBSan; tests/CMakeLists.txt pins the ASan
// quarantine small so freed buffers do not inflate VmHWM.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <thread>
#include <vector>

#include "river/record.hpp"
#include "river/record_log.hpp"
#include "river/segment_store.hpp"
#include "test_support.hpp"

namespace river = dynriver::river;
namespace testsupport = dynriver::testsupport;
namespace fs = std::filesystem;
using river::Record;

namespace {

/// Peak resident set (VmHWM) in bytes; 0 when /proc is unavailable.
std::size_t peak_rss_bytes() {
  FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::size_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      kb = std::strtoull(line + 6, nullptr, 10);
      break;
    }
  }
  std::fclose(f);
  return kb * 1024;
}

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::strtoull(v, nullptr, 10) : fallback;
}

Record audio_record(std::uint64_t seq, std::size_t n) {
  Record rec = Record::data(river::kSubtypeAudio,
                            river::FloatVec(n, static_cast<float>(seq)));
  rec.sequence = seq;
  return rec;
}

class SegmentStoreSoak : public testsupport::TempDirTest {};

}  // namespace

TEST_F(SegmentStoreSoak, RecoveryScanOfLargeTornLogIsBoundedMemory) {
  // ~64 MB flat log (DR_SOAK_LOG_RECORDS scales it), torn mid-frame.
  const auto path = temp_file("big.drl");
  const std::size_t records = env_size("DR_SOAK_LOG_RECORDS", 4000);
  {
    river::RecordLogWriter writer(path);
    for (std::uint64_t i = 0; i < records; ++i) {
      writer.write(audio_record(i, 4096));  // ~16.4 KB per frame
    }
    writer.close();
  }
  const auto full_size = fs::file_size(path);
  fs::resize_file(path, full_size - 5);  // torn tail

  const std::size_t rss_before = peak_rss_bytes();
  const auto [valid_bytes, valid_records] = river::scan_log_valid_prefix(path);
  river::RecordLogWriter writer(path, river::LogOpenMode::kRecover);
  const std::size_t rss_after = peak_rss_bytes();

  EXPECT_EQ(valid_records, records - 1);
  EXPECT_LT(valid_bytes, full_size);
  EXPECT_EQ(writer.recovered_records(), records - 1);
  writer.write(audio_record(records, 16));  // still appendable
  writer.close();

  if (rss_before == 0) GTEST_SKIP() << "/proc/self/status unavailable";
  // The whole-file slurp this guards against would spike VmHWM by at least
  // full_size (~64 MB); the streamed scan needs only a 64 KiB window plus
  // one decoder frame. Allow generous allocator/sanitizer slack.
  const std::size_t grew = rss_after - rss_before;
  EXPECT_LT(grew, full_size / 4)
      << "recovery scan retained O(file) memory (grew " << grew << " bytes of "
      << full_size << ")";
}

TEST_F(SegmentStoreSoak, ReaderRacesWriterThroughSustainedRotation) {
  const auto dir = temp_file("race-store");
  river::SegmentStoreOptions options;
  options.max_segment_bytes = 32 << 10;  // rotate every ~60 records
  options.sync_on_seal = true;
  const std::uint64_t total = env_size("DR_SOAK_RACE_RECORDS", 6000);

  std::atomic<bool> done{false};
  std::atomic<std::size_t> reader_passes{0};
  std::size_t last_count = 0;
  std::size_t max_count = 0;
  std::string reader_failure;

  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      try {
        river::SegmentStoreReader reader_view(dir);
        auto cursor = reader_view.seek(0.0);
        Record rec;
        std::size_t count = 0;
        double prev_t = -1.0;
        while (cursor.next(rec)) {
          if (cursor.time() < prev_t) {
            reader_failure = "time went backwards";
            done.store(true, std::memory_order_release);
            return;
          }
          prev_t = cursor.time();
          ++count;
        }
        // Snapshot isolation: a later pass never sees fewer records than an
        // earlier completed pass (sealing + sync only ever publish more).
        if (count < last_count) {
          reader_failure = "record count went backwards";
          done.store(true, std::memory_order_release);
          return;
        }
        last_count = count;
        max_count = std::max(max_count, count);
        ++reader_passes;
      } catch (const std::exception& e) {
        reader_failure = e.what();
        done.store(true, std::memory_order_release);
        return;
      }
    }
  });

  {
    river::SegmentedRecordLog log(dir, options);
    for (std::uint64_t i = 0; i < total; ++i) {
      log.append(audio_record(i, 100), 0.001 * static_cast<double>(i));
      if (i % 64 == 0) log.sync();  // publish the tail for the racing reader
    }
    log.close();
  }
  done.store(true, std::memory_order_release);
  reader.join();

  ASSERT_TRUE(reader_failure.empty()) << reader_failure;
  EXPECT_GT(reader_passes.load(), 0U) << "reader never completed a pass";

  river::SegmentStoreReader final_view(dir);
  EXPECT_TRUE(final_view.verify());
  auto cursor = final_view.seek(0.0);
  Record rec;
  std::size_t count = 0;
  while (cursor.next(rec)) ++count;
  EXPECT_EQ(count, total);
  EXPECT_GE(count, max_count);
}

TEST_F(SegmentStoreSoak, KillNineDrillRecoversSyncedPrefixAndContinues) {
  const auto dir = temp_file("kill-store");
  river::SegmentStoreOptions options;
  options.max_segment_bytes = 32 << 10;
  constexpr std::uint64_t kSealed = 300;    // enough to rotate a few times
  constexpr std::uint64_t kSynced = 40;     // active tail made durable
  constexpr std::uint64_t kBuffered = 30;   // dies in the writer's buffer

  const pid_t pid = fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    // Child: write, sync part of the active tail, then die without flushing
    // stdio or running destructors — the on-disk image of a real crash.
    try {
      river::SegmentedRecordLog log(dir, options);
      std::uint64_t i = 0;
      for (; i < kSealed; ++i) {
        log.append(audio_record(i, 100), static_cast<double>(i));
      }
      log.seal_active();
      for (; i < kSealed + kSynced; ++i) {
        log.append(audio_record(i, 100), static_cast<double>(i));
      }
      log.sync();
      for (; i < kSealed + kSynced + kBuffered; ++i) {
        log.append(audio_record(i, 100), static_cast<double>(i));
      }
      _exit(0);  // log still alive: no destructor, no seal, no stdio flush
    } catch (...) {
      _exit(2);
    }
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
      << "child writer failed before the simulated crash";

  // Reopen: recovery must keep every sealed segment and seal the synced
  // prefix of the torn active segment.
  river::SegmentedRecordLog log(dir, options);
  EXPECT_GE(log.recovered_records(), kSynced);
  std::uint64_t on_disk = 0;
  for (const auto& s : log.segments()) on_disk += s.frames;
  EXPECT_GE(on_disk, kSealed + kSynced);
  EXPECT_LE(on_disk, kSealed + kSynced + kBuffered);

  // The store keeps working after recovery.
  const std::uint64_t next = kSealed + kSynced + kBuffered;
  log.append(audio_record(next, 100), static_cast<double>(next));
  log.close();

  river::SegmentStoreReader reader(dir);
  EXPECT_TRUE(reader.verify());
  auto cursor = reader.seek(0.0);
  Record rec;
  std::uint64_t count = 0;
  std::uint64_t prev_seq = 0;
  bool first = true;
  while (cursor.next(rec)) {
    if (!first) {
      EXPECT_GT(rec.sequence, prev_seq);
    }
    prev_seq = rec.sequence;
    first = false;
    ++count;
  }
  EXPECT_EQ(count, on_disk + 1);
  EXPECT_EQ(prev_seq, next) << "post-recovery append must be the last record";
}

TEST_F(SegmentStoreSoak, PackedKillDrillRecoversSyncedPrefixAndContinues) {
  // The same crash image, but with the bit-packing codec on: the recovered
  // prefix must decode (packed frames are self-delimiting within their
  // envelopes) and the store must keep accepting packed appends.
  const auto dir = temp_file("packed-kill-store");
  river::SegmentStoreOptions options;
  options.max_segment_bytes = 32 << 10;
  options.pack_payloads = true;
  constexpr std::uint64_t kSealed = 300;
  constexpr std::uint64_t kSynced = 40;
  constexpr std::uint64_t kBuffered = 30;

  const pid_t pid = fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    try {
      river::SegmentedRecordLog log(dir, options);
      std::uint64_t i = 0;
      for (; i < kSealed; ++i) {
        log.append(audio_record(i, 100), static_cast<double>(i));
      }
      log.seal_active();
      for (; i < kSealed + kSynced; ++i) {
        log.append(audio_record(i, 100), static_cast<double>(i));
      }
      log.sync();
      for (; i < kSealed + kSynced + kBuffered; ++i) {
        log.append(audio_record(i, 100), static_cast<double>(i));
      }
      _exit(0);
    } catch (...) {
      _exit(2);
    }
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
      << "child writer failed before the simulated crash";

  river::SegmentedRecordLog log(dir, options);
  EXPECT_GE(log.recovered_records(), kSynced);
  std::uint64_t on_disk = 0;
  for (const auto& s : log.segments()) on_disk += s.frames;
  EXPECT_GE(on_disk, kSealed + kSynced);
  EXPECT_LE(on_disk, kSealed + kSynced + kBuffered);
  const std::uint64_t next = kSealed + kSynced + kBuffered;
  log.append(audio_record(next, 100), static_cast<double>(next));
  log.close();

  river::SegmentStoreReader reader(dir);
  EXPECT_TRUE(reader.verify());
  auto cursor = reader.seek(0.0);
  Record rec;
  std::uint64_t count = 0;
  while (cursor.next(rec)) {
    // Every recovered record decodes to its full payload, not just a header.
    EXPECT_EQ(std::get<river::FloatVec>(rec.payload).size(), 100U);
    ++count;
  }
  EXPECT_FALSE(cursor.torn());
  EXPECT_EQ(count, on_disk + 1);
}

TEST_F(SegmentStoreSoak, MaintenanceRacesLiveWriterAndConcurrentReader) {
  // Three-way churn: the owning thread appends packed records while a
  // Maintenance thread retires and compacts under budget and a reader
  // thread keeps re-opening the store. Cursors may fail when retention
  // deletes a file out from under their snapshot (the documented contract
  // says re-seek), but they must never see time run backwards, and the
  // store must end consistent.
  const auto dir = temp_file("maintenance-race");
  river::SegmentStoreOptions options;
  options.max_segment_bytes = 16 << 10;  // rotate constantly
  options.sync_on_seal = true;
  options.pack_payloads = true;
  const std::uint64_t total = env_size("DR_SOAK_RACE_RECORDS", 6000);

  std::atomic<bool> done{false};
  std::atomic<std::size_t> reader_passes{0};
  std::string reader_failure;

  river::SegmentedRecordLog log(dir, options);
  river::MaintenanceOptions mopts;
  mopts.interval_seconds = 0.001;
  mopts.retain_seconds = 1.0;            // stream seconds, not wall time
  mopts.compact_min_bytes = 48 << 10;
  mopts.compact_max_run = 4;
  mopts.budget_bytes_per_sec = 64 << 20;
  river::SegmentedRecordLog::Maintenance maintenance(log, mopts);

  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      try {
        river::SegmentStoreReader view(dir);
        auto cursor = view.seek(0.0);
        Record rec;
        double prev_t = -1.0;
        while (cursor.next(rec)) {
          if (cursor.time() < prev_t) {
            reader_failure = "time went backwards";
            done.store(true, std::memory_order_release);
            return;
          }
          prev_t = cursor.time();
        }
        ++reader_passes;
      } catch (const std::exception&) {
        // Retention deleted a file under this cursor's snapshot: allowed.
        // Re-seek (next loop iteration) per the store's documented contract.
      }
    }
  });

  for (std::uint64_t i = 0; i < total && !done.load(); ++i) {
    log.append(audio_record(i, 100), 0.001 * static_cast<double>(i));
    if (i % 64 == 0) log.sync();
  }
  maintenance.stop();
  const auto stats = maintenance.stats();
  log.close();
  done.store(true, std::memory_order_release);
  reader.join();

  ASSERT_TRUE(reader_failure.empty()) << reader_failure;
  EXPECT_GT(reader_passes.load(), 0U) << "reader never completed a pass";
  EXPECT_GT(stats.cycles, 0U);
  EXPECT_GT(stats.segments_retired + stats.segments_merged, 0U)
      << "maintenance never did any work: tune the churn";

  // End state: everything still on disk verifies and reads back in order,
  // with strictly increasing sequences up to the final record.
  river::SegmentStoreReader final_view(dir);
  std::string error;
  EXPECT_TRUE(final_view.verify(&error)) << error;
  auto cursor = final_view.seek(0.0);
  Record rec;
  std::uint64_t prev_seq = 0;
  std::uint64_t count = 0;
  while (cursor.next(rec)) {
    if (count > 0) {
      EXPECT_GT(rec.sequence, prev_seq);
    }
    prev_seq = rec.sequence;
    ++count;
  }
  EXPECT_GT(count, 0U);
  EXPECT_EQ(prev_seq, total - 1) << "the newest records must survive";
}
