// SAX bitmaps and the streaming anomaly scorer: counting semantics,
// incremental == batch equivalence, and the core behavioural property that
// the score rises when signal texture changes (tone onset in noise).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numbers>
#include <random>

#include "common/contracts.hpp"
#include "ts/anomaly.hpp"
#include "ts/bitmap.hpp"
#include "test_support.hpp"

namespace ts = dynriver::ts;

TEST(SaxBitmap, CountsSubwords) {
  ts::SaxBitmap bm(3, 2);
  const std::vector<ts::Symbol> syms = {0, 1, 2, 1, 0};
  bm.add_all(syms);
  // Subwords: 01, 12, 21, 10.
  EXPECT_EQ(bm.total(), 4u);
  EXPECT_EQ(bm.counts()[0 * 3 + 1], 1u);
  EXPECT_EQ(bm.counts()[1 * 3 + 2], 1u);
  EXPECT_EQ(bm.counts()[2 * 3 + 1], 1u);
  EXPECT_EQ(bm.counts()[1 * 3 + 0], 1u);
}

TEST(SaxBitmap, FrequenciesSumToOne) {
  ts::SaxBitmap bm(4, 2);
  const std::vector<ts::Symbol> syms = {0, 1, 2, 3, 2, 1, 0, 0, 1};
  bm.add_all(syms);
  const auto freq = bm.frequencies();
  double sum = 0.0;
  for (const double f : freq) sum += f;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(SaxBitmap, AddRemoveRoundTrip) {
  ts::SaxBitmap bm(4, 2);
  const std::vector<ts::Symbol> sub1 = {1, 2};
  const std::vector<ts::Symbol> sub2 = {3, 0};
  bm.add(sub1);
  bm.add(sub2);
  bm.add(sub1);
  EXPECT_EQ(bm.total(), 3u);
  bm.remove(sub1);
  bm.remove(sub2);
  bm.remove(sub1);
  EXPECT_EQ(bm.total(), 0u);
  for (const auto c : bm.counts()) EXPECT_EQ(c, 0u);
}

TEST(SaxBitmap, RemoveBelowZeroThrows) {
  ts::SaxBitmap bm(4, 1);
  EXPECT_THROW(bm.remove_cell(0), dynriver::ContractViolation);
}

TEST(SaxBitmap, IdenticalWindowsHaveZeroDistance) {
  ts::SaxBitmap a(4, 2);
  ts::SaxBitmap b(4, 2);
  const std::vector<ts::Symbol> syms = {0, 1, 2, 3, 0, 1, 2, 3};
  a.add_all(syms);
  b.add_all(syms);
  EXPECT_DOUBLE_EQ(ts::bitmap_distance(a, b), 0.0);
}

TEST(SaxBitmap, DisjointWindowsHaveMaximalDistance) {
  ts::SaxBitmap a(4, 1);
  ts::SaxBitmap b(4, 1);
  a.add_cell(0);
  b.add_cell(3);
  // Frequencies are unit vectors on different axes: distance sqrt(2).
  EXPECT_NEAR(ts::bitmap_distance(a, b), std::sqrt(2.0), 1e-12);
}

TEST(SaxBitmap, MismatchedConfigsThrow) {
  ts::SaxBitmap a(4, 2);
  ts::SaxBitmap b(8, 2);
  EXPECT_THROW((void)ts::bitmap_distance(a, b), dynriver::ContractViolation);
}

using dynriver::testsupport::noise_with_bursts;
using dynriver::testsupport::noise_with_tone;

TEST(StreamingAnomaly, OnsetSpikeInSampleMode) {
  // In classic per-sample mode the bitmap score marks texture *boundaries*:
  // the peak score near the onset must clearly exceed the noise baseline.
  ts::AnomalyParams params;
  params.window = 100;
  params.alphabet = 8;
  params.level = 2;
  params.ma_window = 200;

  const std::size_t tone_start = 4000;
  const auto x = noise_with_tone(8000, tone_start, 2000, 7);
  const auto scores = ts::anomaly_scores(x, params);

  double baseline = 0.0;
  for (std::size_t i = 2000; i < 3500; ++i) baseline += scores[i];
  baseline /= 1500.0;
  double peak = 0.0;
  for (std::size_t i = tone_start; i < tone_start + 600; ++i) {
    peak = std::max(peak, scores[i]);
  }
  EXPECT_GT(peak, baseline * 1.5) << "baseline=" << baseline << " peak=" << peak;
}

TEST(StreamingAnomaly, SustainedScoreInEnergyFrameMode) {
  // With energy frames (frame > 1), an event with internal on/off structure
  // (like birdsong syllables) keeps the smoothed score elevated across its
  // whole extent, which is what the trigger needs.
  ts::AnomalyParams params;
  params.window = 50;
  params.alphabet = 8;
  params.level = 2;
  params.ma_window = 500;
  params.frame = 8;

  const std::size_t tone_start = 30000;
  const auto x = noise_with_bursts(60000, tone_start, 15000, 7);
  const auto scores = ts::anomaly_scores(x, params);

  double baseline = 0.0;
  for (std::size_t i = 15000; i < 28000; ++i) baseline += scores[i];
  baseline /= 13000.0;
  double event = 0.0;
  for (std::size_t i = tone_start + 2000; i < tone_start + 12000; ++i) {
    event += scores[i];
  }
  event /= 10000.0;
  EXPECT_GT(event, baseline * 2.0) << "baseline=" << baseline
                                   << " event=" << event;
}

TEST(StreamingAnomaly, WarmupProducesZeroScores) {
  ts::AnomalyParams params;
  params.window = 50;
  params.ma_window = 10;
  ts::StreamingAnomalyScorer scorer(params);
  // Both windows need 2 * (window - level + 1) = 98 grams = 99 samples.
  std::mt19937 gen(3);
  std::normal_distribution<float> dist(0.0F, 1.0F);
  for (std::size_t i = 0; i < 100; ++i) {
    (void)scorer.push(dist(gen));
    if (i < 98) {
      EXPECT_DOUBLE_EQ(scorer.raw_score(), 0.0) << "i=" << i;
    }
  }
  EXPECT_TRUE(scorer.warmed_up());
}

TEST(StreamingAnomaly, ResetClearsState) {
  ts::AnomalyParams params;
  params.window = 20;
  params.ma_window = 5;
  ts::StreamingAnomalyScorer scorer(params);
  std::mt19937 gen(4);
  std::normal_distribution<float> dist(0.0F, 1.0F);
  for (int i = 0; i < 200; ++i) (void)scorer.push(dist(gen));
  EXPECT_TRUE(scorer.warmed_up());
  scorer.reset();
  EXPECT_FALSE(scorer.warmed_up());
  EXPECT_DOUBLE_EQ(scorer.raw_score(), 0.0);
}

TEST(StreamingAnomaly, IncrementalDistanceIdentityHoldsForEqualTotals) {
  // The scorer's O(1) score update relies on this identity: with equal
  // totals N, bitmap_distance(a, b) == sqrt(sum (count_a - count_b)^2) / N.
  // Drive two bitmaps through a random add/remove churn that keeps totals
  // equal (exactly the scorer's full-window regime) and compare both forms.
  std::mt19937 gen(17);
  ts::SaxBitmap a(4, 2);
  ts::SaxBitmap b(4, 2);
  std::uniform_int_distribution<std::size_t> cell(0, a.cells() - 1);
  std::vector<std::size_t> in_a;
  std::vector<std::size_t> in_b;
  for (int i = 0; i < 64; ++i) {
    in_a.push_back(cell(gen));
    a.add_cell(in_a.back());
    in_b.push_back(cell(gen));
    b.add_cell(in_b.back());
  }
  for (int step = 0; step < 200; ++step) {
    // Replace one random gram in each window, as the sliding windows do.
    std::uniform_int_distribution<std::size_t> pick(0, in_a.size() - 1);
    const std::size_t ia = pick(gen);
    a.remove_cell(in_a[ia]);
    in_a[ia] = cell(gen);
    a.add_cell(in_a[ia]);
    const std::size_t ib = pick(gen);
    b.remove_cell(in_b[ib]);
    in_b[ib] = cell(gen);
    b.add_cell(in_b[ib]);

    std::int64_t sq = 0;
    for (std::size_t c = 0; c < a.cells(); ++c) {
      const auto d = static_cast<std::int64_t>(a.counts()[c]) -
                     static_cast<std::int64_t>(b.counts()[c]);
      sq += d * d;
    }
    const double incremental =
        std::sqrt(static_cast<double>(sq)) / static_cast<double>(a.total());
    EXPECT_NEAR(incremental, ts::bitmap_distance(a, b), 1e-12)
        << "step=" << step;
  }
}

TEST(StreamingAnomaly, ScoreStaysWithinDistanceBounds) {
  // Post-warmup the incremental raw score must stay inside bitmap-distance
  // bounds [0, sqrt(2)] at every sample of a long stream (an accumulated
  // integer-state bug would drift it outside).
  ts::AnomalyParams params;
  params.window = 30;
  params.ma_window = 5;
  ts::StreamingAnomalyScorer scorer(params);
  const auto x = noise_with_tone(4000, 2000, 1000, 13);
  bool saw_positive = false;
  for (const float v : x) {
    (void)scorer.push(v);
    EXPECT_GE(scorer.raw_score(), 0.0);
    EXPECT_LE(scorer.raw_score(), std::sqrt(2.0) + 1e-12);
    saw_positive = saw_positive || scorer.raw_score() > 0.0;
  }
  EXPECT_TRUE(saw_positive);
}

TEST(StreamingAnomaly, DeterministicAcrossRuns) {
  ts::AnomalyParams params;
  const auto x = noise_with_tone(6000, 3000, 1500, 11);
  const auto s1 = ts::anomaly_scores(x, params);
  const auto s2 = ts::anomaly_scores(x, params);
  EXPECT_EQ(s1, s2);
}

TEST(StreamingAnomaly, HomogeneousSignalScoresNearZeroLate) {
  // Pure stationary noise: lag and lead windows have similar texture, so the
  // score stays small compared to a texture change.
  ts::AnomalyParams params;
  params.window = 100;
  params.ma_window = 50;
  std::mt19937 gen(5);
  std::normal_distribution<float> dist(0.0F, 1.0F);
  std::vector<float> x(6000);
  for (auto& v : x) v = dist(gen);
  const auto scores = ts::anomaly_scores(x, params);

  double late = 0.0;
  for (std::size_t i = 5000; i < 6000; ++i) late += scores[i];
  late /= 1000.0;
  // The theoretical max bitmap distance is sqrt(2); stationary noise should
  // sit far below it.
  EXPECT_LT(late, 0.35);
}

class AnomalyParamSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(AnomalyParamSweep, DetectsOnsetAcrossConfigs) {
  const auto [window, alphabet] = GetParam();
  ts::AnomalyParams params;
  params.window = window;
  params.alphabet = alphabet;
  params.ma_window = 100;
  params.frame = 8;  // energy mode, like the acoustic pipeline

  const std::size_t tone_start = 30000;
  const auto x = noise_with_bursts(50000, tone_start, 12000, 21);
  const auto scores = ts::anomaly_scores(x, params);

  double baseline = 0.0;
  for (std::size_t i = 20000; i < 28000; ++i) baseline += scores[i];
  baseline /= 8000.0;
  double event = 0.0;
  for (std::size_t i = tone_start + 3000; i < tone_start + 10000; ++i) {
    event += scores[i];
  }
  event /= 7000.0;
  EXPECT_GT(event, baseline * 1.2)
      << "window=" << window << " alphabet=" << alphabet;
}

// The window must sit between the estimator's sampling-noise floor (too
// small: ~25 symbols of 64 bitmap cells is mostly noise) and the event's
// internal modulation period (too large: >225 symbols averages over whole
// on/off cycles and the score flattens). bench_ablation_windows sweeps the
// full range including the failing regimes.
INSTANTIATE_TEST_SUITE_P(
    Configs, AnomalyParamSweep,
    ::testing::Combine(::testing::Values(50, 100, 150),
                       ::testing::Values(4, 8, 16)));

// ---------------------------------------------------------------------------
// Chunk-sweep property: the record-granular batch path must be bit-identical
// to the incremental streaming path for EVERY chunking of the input, down to
// 1-sample pushes. The batch path exists purely for speed (hoisted frame
// folds, MovingAverage::push_run), so any ulp of divergence is a bug — the
// scores feed integer trigger decisions and the extractor's cut points.
// ---------------------------------------------------------------------------

TEST(StreamingAnomaly, BatchMatchesStreamingForEveryChunking) {
  for (const std::size_t frame : {1UL, 5UL, 24UL}) {
    ts::AnomalyParams params;
    params.window = 60;
    params.alphabet = 8;
    params.level = 2;
    params.ma_window = 400;
    params.frame = frame;

    const auto x = noise_with_bursts(9000, 4000, 3000, 17);

    // Reference: pure per-sample streaming.
    ts::StreamingAnomalyScorer ref(params);
    std::vector<double> want(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) want[i] = ref.push(x[i]);

    for (const std::size_t chunk : {1UL, 256UL, 900UL, 4096UL}) {
      ts::StreamingAnomalyScorer scorer(params);
      std::vector<double> got(x.size());
      for (std::size_t base = 0; base < x.size(); base += chunk) {
        const std::size_t m = std::min(chunk, x.size() - base);
        scorer.push_batch(x.data() + base, m, got.data() + base);
      }
      for (std::size_t i = 0; i < x.size(); ++i) {
        ASSERT_EQ(got[i], want[i])
            << "frame=" << frame << " chunk=" << chunk << " i=" << i;
      }
    }

    // Mixed chunking: alternating tiny and large records (the wire produces
    // arbitrary record boundaries) must land on the same state machine.
    {
      ts::StreamingAnomalyScorer scorer(params);
      std::vector<double> got(x.size());
      std::size_t base = 0;
      std::size_t step = 1;
      while (base < x.size()) {
        const std::size_t m = std::min(step, x.size() - base);
        scorer.push_batch(x.data() + base, m, got.data() + base);
        base += m;
        step = step * 3 + 1;  // 1, 4, 13, 40, ... crosses frame boundaries
        if (step > 2000) step = 1;
      }
      for (std::size_t i = 0; i < x.size(); ++i) {
        ASSERT_EQ(got[i], want[i]) << "frame=" << frame << " mixed i=" << i;
      }
    }

    // The float-out overload is the double-out value narrowed once at the
    // end — same state machine, same arithmetic.
    {
      ts::StreamingAnomalyScorer scorer(params);
      std::vector<float> gotf(x.size());
      for (std::size_t base = 0; base < x.size(); base += 900) {
        const std::size_t m = std::min<std::size_t>(900, x.size() - base);
        scorer.push_batch(x.data() + base, m, gotf.data() + base);
      }
      for (std::size_t i = 0; i < x.size(); ++i) {
        ASSERT_EQ(gotf[i], static_cast<float>(want[i]))
            << "frame=" << frame << " float i=" << i;
      }
    }
  }
}

TEST(StreamingAnomaly, BatchMatchesStreamingAfterReset) {
  // reset() must put the batch path back on the exact streaming state.
  ts::AnomalyParams params;
  params.window = 40;
  params.ma_window = 300;
  params.frame = 24;
  const auto x = noise_with_tone(5000, 2500, 1500, 23);

  ts::StreamingAnomalyScorer scorer(params);
  std::vector<double> scratch(1234);
  scorer.push_batch(x.data(), scratch.size(), scratch.data());
  scorer.reset();

  ts::StreamingAnomalyScorer ref(params);
  std::vector<double> want(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) want[i] = ref.push(x[i]);

  std::vector<double> got(x.size());
  scorer.push_batch(x.data(), x.size(), got.data());
  for (std::size_t i = 0; i < x.size(); ++i) {
    ASSERT_EQ(got[i], want[i]) << "i=" << i;
  }
}
