// Channels and stream_in/stream_out: blocking semantics, backpressure,
// clean vs abnormal termination, BadCloseScope synthesis, fault injection.
#include <gtest/gtest.h>

#include <thread>

#include "river/channel.hpp"
#include "river/stream_io.hpp"

namespace river = dynriver::river;
using river::InProcessChannel;
using river::Record;
using river::RecordType;
using river::RecvStatus;

TEST(InProcessChannel, SendRecvOrder) {
  InProcessChannel ch(8);
  for (int i = 0; i < 5; ++i) {
    Record rec;
    rec.sequence = static_cast<std::uint64_t>(i);
    EXPECT_TRUE(ch.send(std::move(rec)));
  }
  Record out;
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(ch.recv(out), RecvStatus::kRecord);
    EXPECT_EQ(out.sequence, static_cast<std::uint64_t>(i));
  }
}

TEST(InProcessChannel, CleanCloseAfterDraining) {
  InProcessChannel ch(8);
  EXPECT_TRUE(ch.send(Record{}));
  ch.close();
  Record out;
  EXPECT_EQ(ch.recv(out), RecvStatus::kRecord);  // queued record still there
  EXPECT_EQ(ch.recv(out), RecvStatus::kClosed);
  EXPECT_FALSE(ch.send(Record{}));  // sends after close fail
}

TEST(InProcessChannel, DisconnectDropsInFlight) {
  InProcessChannel ch(8);
  EXPECT_TRUE(ch.send(Record{}));
  ch.disconnect();
  Record out;
  EXPECT_EQ(ch.recv(out), RecvStatus::kDisconnected);  // queue wiped
}

TEST(InProcessChannel, RecvForTimesOut) {
  InProcessChannel ch(8);
  Record out;
  EXPECT_EQ(ch.recv_for(out, 10), RecvStatus::kTimeout);
}

TEST(InProcessChannel, BackpressureBlocksSender) {
  InProcessChannel ch(2);
  EXPECT_TRUE(ch.send(Record{}));
  EXPECT_TRUE(ch.send(Record{}));

  std::atomic<bool> third_sent{false};
  std::thread sender([&] {
    Record rec;
    rec.sequence = 3;
    EXPECT_TRUE(ch.send(std::move(rec)));
    third_sent.store(true);
  });
  // The third send must block until the receiver makes room.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(third_sent.load());

  Record out;
  EXPECT_EQ(ch.recv(out), RecvStatus::kRecord);
  sender.join();
  EXPECT_TRUE(third_sent.load());
}

TEST(InProcessChannel, CrossThreadThroughput) {
  InProcessChannel ch(16);
  constexpr int kCount = 10000;
  std::thread producer([&] {
    for (int i = 0; i < kCount; ++i) {
      Record rec;
      rec.sequence = static_cast<std::uint64_t>(i);
      ch.send(std::move(rec));
    }
    ch.close();
  });
  Record out;
  int received = 0;
  while (ch.recv(out) == RecvStatus::kRecord) {
    EXPECT_EQ(out.sequence, static_cast<std::uint64_t>(received));
    ++received;
  }
  producer.join();
  EXPECT_EQ(received, kCount);
}

TEST(LossyChannel, FailsAfterConfiguredCount) {
  auto inner = std::make_shared<InProcessChannel>(64);
  river::LossyChannel lossy(inner, 3);
  EXPECT_TRUE(lossy.send(Record{}));
  EXPECT_TRUE(lossy.send(Record{}));
  EXPECT_TRUE(lossy.send(Record{}));
  EXPECT_FALSE(lossy.send(Record{}));  // 4th send kills the link
  EXPECT_TRUE(lossy.failed());

  Record out;
  // The inner channel saw an abnormal disconnect: in-flight records dropped.
  EXPECT_EQ(inner->recv(out), RecvStatus::kDisconnected);
}

TEST(StreamInOut, CleanStreamPassesAndCloses) {
  auto ch = std::make_shared<InProcessChannel>(64);
  river::StreamOut out_op(ch);
  river::NullEmitter null;
  out_op.process(Record::open_scope(river::kScopeClip, 0), null);
  out_op.process(Record::data(river::kSubtypeAudio, {1.0F}), null);
  out_op.process(Record::close_scope(river::kScopeClip, 0), null);
  out_op.flush(null);

  river::VectorEmitter sink;
  const auto result = river::stream_in(*ch, sink);
  EXPECT_TRUE(result.clean);
  EXPECT_EQ(result.records_in, 3u);
  EXPECT_EQ(result.bad_closes_emitted, 0u);
  EXPECT_EQ(sink.records.size(), 3u);
}

TEST(StreamInOut, DisconnectSynthesizesBadCloses) {
  auto ch = std::make_shared<InProcessChannel>(64);
  ch->send(Record::open_scope(river::kScopeClip, 0));
  ch->send(Record::open_scope(river::kScopeEnsemble, 1));
  ch->send(Record::data(river::kSubtypeAudio, {1.0F}));
  // Upstream dies without closing its scopes. Use close() so the queued
  // records survive (a TCP FIN after partial data behaves this way).
  ch->close();

  river::VectorEmitter sink;
  const auto result = river::stream_in(*ch, sink);
  EXPECT_FALSE(result.clean);  // scopes were left open
  EXPECT_EQ(result.bad_closes_emitted, 2u);
  ASSERT_EQ(sink.records.size(), 5u);
  // Innermost first.
  EXPECT_EQ(sink.records[3].type, RecordType::kBadCloseScope);
  EXPECT_EQ(sink.records[3].scope_type, river::kScopeEnsemble);
  EXPECT_EQ(sink.records[4].type, RecordType::kBadCloseScope);
  EXPECT_EQ(sink.records[4].scope_type, river::kScopeClip);
}

TEST(StreamInOut, MalformedStreamThrowsScopeError) {
  auto ch = std::make_shared<InProcessChannel>(64);
  ch->send(Record::close_scope(river::kScopeClip, 0));  // close without open
  ch->close();
  river::VectorEmitter sink;
  EXPECT_THROW((void)river::stream_in(*ch, sink), river::ScopeError);
}

TEST(StreamInOut, PipelineVariantProcessesRecords) {
  auto ch = std::make_shared<InProcessChannel>(64);
  ch->send(Record::data(river::kSubtypeAudio, {2.0F}));
  ch->close();

  river::Pipeline pipeline;
  pipeline.emplace<river::LambdaOperator>(
      "triple", [](Record rec, river::Emitter& out) {
        for (auto& v : rec.floats()) v *= 3.0F;
        out.emit(std::move(rec));
      });
  river::VectorEmitter sink;
  const auto result = river::stream_in(*ch, pipeline, sink);
  EXPECT_TRUE(result.clean);
  ASSERT_EQ(sink.records.size(), 1u);
  EXPECT_FLOAT_EQ(sink.records[0].floats()[0], 6.0F);
}
