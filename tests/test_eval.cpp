// Evaluation harness: confusion matrices, voting, protocols on a controlled
// synthetic data set, and the corpus builder at reduced scale.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <iterator>

#include "eval/corpus_cache.hpp"
#include "eval/dataset.hpp"
#include "eval/metrics.hpp"
#include "eval/protocol.hpp"
#include "meso/baselines.hpp"
#include "meso/classifier.hpp"
#include "test_support.hpp"

namespace eval = dynriver::eval;
namespace meso = dynriver::meso;
namespace synth = dynriver::synth;

namespace {
/// Small, perfectly separable data set: class c patterns sit at c * 10.
eval::Dataset toy_dataset(std::size_t classes, std::size_t ensembles_per_class,
                          std::size_t patterns_per_ensemble) {
  eval::Dataset data;
  data.num_classes = classes;
  unsigned counter = 0;
  for (std::size_t c = 0; c < classes; ++c) {
    for (std::size_t e = 0; e < ensembles_per_class; ++e) {
      eval::EnsembleData ens;
      ens.label = static_cast<int>(c);
      for (std::size_t p = 0; p < patterns_per_ensemble; ++p) {
        const float jitter = 0.01F * static_cast<float>(counter++ % 17);
        ens.patterns.push_back(
            {static_cast<float>(c) * 10.0F + jitter, 1.0F + jitter});
      }
      data.ensembles.push_back(std::move(ens));
    }
  }
  return data;
}

eval::ClassifierFactory meso_factory() {
  return [] { return std::make_unique<meso::MesoClassifier>(); };
}
}  // namespace

TEST(ConfusionMatrix, CountsAndPercents) {
  eval::ConfusionMatrix cm(3);
  cm.add(0, 0);
  cm.add(0, 0);
  cm.add(0, 1);
  cm.add(2, 2);
  EXPECT_EQ(cm.count(0, 0), 2u);
  EXPECT_EQ(cm.row_total(0), 3u);
  EXPECT_EQ(cm.total(), 4u);
  EXPECT_NEAR(cm.percent(0, 0), 66.67, 0.01);
  EXPECT_NEAR(cm.percent(0, 1), 33.33, 0.01);
  EXPECT_DOUBLE_EQ(cm.percent(1, 1), 0.0);  // empty row
  EXPECT_NEAR(cm.accuracy(), 0.75, 1e-12);
}

TEST(ConfusionMatrix, MergeAccumulates) {
  eval::ConfusionMatrix a(2), b(2);
  a.add(0, 0);
  b.add(0, 1);
  b.add(1, 1);
  a.merge(b);
  EXPECT_EQ(a.total(), 3u);
  EXPECT_EQ(a.count(0, 1), 1u);
}

TEST(ConfusionMatrix, RendersWithLabels) {
  eval::ConfusionMatrix cm(2);
  cm.add(0, 0);
  cm.add(1, 0);
  const std::vector<std::string> labels = {"AMGO", "BCCH"};
  const auto text = cm.to_string(labels);
  EXPECT_NE(text.find("AMGO"), std::string::npos);
  EXPECT_NE(text.find("100.0"), std::string::npos);
}

TEST(Summarize, MeanAndSampleStd) {
  const std::vector<double> values = {0.8, 0.9, 1.0};
  const auto stats = eval::summarize(values);
  EXPECT_NEAR(stats.mean, 0.9, 1e-12);
  EXPECT_NEAR(stats.stddev, 0.1, 1e-12);
  EXPECT_EQ(stats.repeats, 3u);
}

TEST(MajorityVote, PicksModeAndBreaksTiesLow) {
  EXPECT_EQ(eval::majority_vote(std::vector<int>{1, 1, 2}, 3), 1);
  EXPECT_EQ(eval::majority_vote(std::vector<int>{2, 1, 1, 2}, 3), 1);  // tie -> low
  EXPECT_EQ(eval::majority_vote(std::vector<int>{0}, 3), 0);
  // Invalid votes (-1) are ignored.
  EXPECT_EQ(eval::majority_vote(std::vector<int>{-1, -1, 2}, 3), 2);
}

TEST(Protocols, PerfectDataClassifiesPerfectly) {
  const auto data = toy_dataset(4, 6, 5);
  eval::ProtocolOptions opts;
  opts.repeats = 3;

  const auto loo = eval::leave_one_out_ensemble(data, meso_factory(), opts);
  EXPECT_DOUBLE_EQ(loo.accuracy.mean, 1.0);
  EXPECT_DOUBLE_EQ(loo.accuracy.stddev, 0.0);
  EXPECT_EQ(loo.trainings, 3u * 24u);

  const auto resub = eval::resubstitution_ensemble(data, meso_factory(), opts);
  EXPECT_DOUBLE_EQ(resub.accuracy.mean, 1.0);
  EXPECT_EQ(resub.trainings, 3u);
}

TEST(Protocols, PatternVariantCountsPatterns) {
  const auto data = toy_dataset(3, 4, 5);
  eval::ProtocolOptions opts;
  opts.repeats = 2;
  opts.max_holdouts = 10;
  const auto loo = eval::leave_one_out_pattern(data, meso_factory(), opts);
  EXPECT_DOUBLE_EQ(loo.accuracy.mean, 1.0);
  EXPECT_EQ(loo.trainings, 2u * 10u);  // subsampled holdouts
  EXPECT_EQ(loo.confusion.total(), 20u);
}

TEST(Protocols, MaxHoldoutsCapsWork) {
  const auto data = toy_dataset(2, 20, 3);
  eval::ProtocolOptions opts;
  opts.repeats = 1;
  opts.max_holdouts = 7;
  const auto loo = eval::leave_one_out_ensemble(data, meso_factory(), opts);
  EXPECT_EQ(loo.trainings, 7u);
}

TEST(Protocols, ConfusionDiagonalForSeparableData) {
  const auto data = toy_dataset(3, 5, 4);
  eval::ProtocolOptions opts;
  opts.repeats = 2;
  const auto result = eval::resubstitution_ensemble(data, meso_factory(), opts);
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_NEAR(result.confusion.percent(c, c), 100.0, 1e-9);
  }
}

TEST(Protocols, WorkWithBaselineClassifiers) {
  const auto data = toy_dataset(3, 4, 3);
  eval::ProtocolOptions opts;
  opts.repeats = 1;
  const auto knn = eval::leave_one_out_ensemble(
      data, [] { return std::make_unique<meso::KnnClassifier>(1); }, opts);
  EXPECT_DOUBLE_EQ(knn.accuracy.mean, 1.0);
  const auto centroid = eval::leave_one_out_ensemble(
      data, [] { return std::make_unique<meso::CentroidClassifier>(); }, opts);
  EXPECT_DOUBLE_EQ(centroid.accuracy.mean, 1.0);
}

TEST(Protocols, TimingMeasuresPositiveDurations) {
  const auto data = toy_dataset(3, 10, 6);
  const auto timing = eval::measure_train_test(data, meso_factory(), 5);
  EXPECT_EQ(timing.patterns, 180u);
  EXPECT_GT(timing.train_seconds, 0.0);
  EXPECT_GT(timing.test_seconds, 0.0);
}

TEST(Dataset, PaaReductionHalvesDimensions) {
  auto data = toy_dataset(2, 2, 2);
  // Widen patterns to 10 features.
  for (auto& e : data.ensembles) {
    for (auto& p : e.patterns) p.assign(10, 3.0F);
  }
  const auto reduced = data.reduce_paa(5);
  EXPECT_EQ(reduced.ensembles[0].patterns[0].size(), 2u);
  EXPECT_FLOAT_EQ(reduced.ensembles[0].patterns[0][0], 3.0F);
  EXPECT_EQ(reduced.ensemble_count(), data.ensemble_count());
}

TEST(Dataset, PerClassCounts) {
  const auto data = toy_dataset(3, 4, 5);
  const auto ens = data.ensembles_per_class();
  const auto pat = data.patterns_per_class();
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_EQ(ens[c], 4u);
    EXPECT_EQ(pat[c], 20u);
  }
  EXPECT_EQ(data.pattern_count(), 60u);
}

TEST(PaperTable1, MatchesPublication) {
  const auto& rows = eval::paper_table1();
  int patterns = 0;
  int ensembles = 0;
  for (const auto& row : rows) {
    patterns += row.patterns;
    ensembles += row.ensembles;
  }
  EXPECT_EQ(patterns, 3673);  // paper: 3,673 patterns
  EXPECT_EQ(ensembles, 473);  // paper: 473 ensembles
  EXPECT_STREQ(rows[5].code, "MODO");
  EXPECT_EQ(rows[5].ensembles, 24);
}

TEST(CorpusBuilder, SmallScaleEndToEnd) {
  eval::BuildConfig cfg;
  cfg.corpus_scale = 0.05;  // ~1-4 songs per species: fast smoke test
  cfg.seed = 99;
  const auto result = eval::build_corpus(cfg);

  EXPECT_GT(result.dataset.ensemble_count(), 0u);
  EXPECT_GT(result.dataset.pattern_count(), result.dataset.ensemble_count());
  EXPECT_EQ(result.paa_dataset.ensemble_count(), result.dataset.ensemble_count());

  // Full-resolution and PAA twins have the paper's dimensionalities.
  EXPECT_EQ(result.dataset.ensembles[0].patterns[0].size(), 1050u);
  EXPECT_EQ(result.paa_dataset.ensembles[0].patterns[0].size(), 105u);

  // Most planted songs must be recovered.
  EXPECT_LT(result.stats.missed_songs, result.stats.clips);
  // Data reduction is substantial (paper: ~80%).
  EXPECT_GT(result.stats.reduction_fraction(), 0.5);

  // Every label is a valid species index.
  for (const auto& e : result.dataset.ensembles) {
    EXPECT_GE(e.label, 0);
    EXPECT_LT(e.label, static_cast<int>(synth::kNumSpecies));
  }
}

TEST(Protocols, ThreadedFoldsBitIdenticalToSerial) {
  // The parallel leave-one-out path must reproduce the serial results
  // exactly: same per-repetition accuracy, same confusion counts.
  const auto data = toy_dataset(4, 8, 3);
  eval::ProtocolOptions serial_opts;
  serial_opts.repeats = 3;
  serial_opts.max_holdouts = 12;
  serial_opts.threads = 1;
  eval::ProtocolOptions threaded_opts = serial_opts;
  threaded_opts.threads = 4;
  eval::ProtocolOptions shared_pool_opts = serial_opts;
  shared_pool_opts.threads = 0;

  const auto check = [&](auto&& protocol) {
    const auto serial = protocol(data, meso_factory(), serial_opts);
    const auto threaded = protocol(data, meso_factory(), threaded_opts);
    const auto shared = protocol(data, meso_factory(), shared_pool_opts);
    for (const auto* result : {&threaded, &shared}) {
      EXPECT_EQ(serial.accuracy.mean, result->accuracy.mean);
      EXPECT_EQ(serial.accuracy.stddev, result->accuracy.stddev);
      EXPECT_EQ(serial.trainings, result->trainings);
      ASSERT_EQ(serial.confusion.total(), result->confusion.total());
      for (std::size_t r = 0; r < data.num_classes; ++r) {
        for (std::size_t c = 0; c < data.num_classes; ++c) {
          EXPECT_EQ(serial.confusion.count(r, c), result->confusion.count(r, c))
              << "cell " << r << "," << c;
        }
      }
    }
  };
  check([](const auto& d, const auto& f, const auto& o) {
    return eval::leave_one_out_ensemble(d, f, o);
  });
  check([](const auto& d, const auto& f, const auto& o) {
    return eval::leave_one_out_pattern(d, f, o);
  });
}

TEST(CorpusCache, SaveLoadRoundTripsExactly) {
  const dynriver::testsupport::ScopedTempDir tmp("corpus-cache");
  eval::BuildConfig cfg;
  cfg.corpus_scale = 0.05;
  cfg.seed = 99;

  bool first_hit = true;
  const auto built = eval::load_or_build_corpus(cfg, tmp.path(), &first_hit);
  EXPECT_FALSE(first_hit);
  ASSERT_TRUE(std::filesystem::exists(eval::corpus_cache_path(tmp.path(), cfg)));

  bool second_hit = false;
  const auto loaded = eval::load_or_build_corpus(cfg, tmp.path(), &second_hit);
  EXPECT_TRUE(second_hit);

  // Datasets round-trip bit-exactly.
  ASSERT_EQ(loaded.dataset.ensemble_count(), built.dataset.ensemble_count());
  EXPECT_EQ(loaded.dataset.num_classes, built.dataset.num_classes);
  for (std::size_t e = 0; e < built.dataset.ensembles.size(); ++e) {
    const auto& a = built.dataset.ensembles[e];
    const auto& b = loaded.dataset.ensembles[e];
    EXPECT_EQ(a.label, b.label);
    EXPECT_EQ(a.clip_id, b.clip_id);
    EXPECT_EQ(a.start_sample, b.start_sample);
    EXPECT_EQ(a.length, b.length);
    EXPECT_EQ(a.patterns, b.patterns);
  }
  ASSERT_EQ(loaded.paa_dataset.ensemble_count(),
            built.paa_dataset.ensemble_count());
  EXPECT_EQ(loaded.paa_dataset.ensembles.back().patterns,
            built.paa_dataset.ensembles.back().patterns);

  // Stats round-trip too.
  EXPECT_EQ(loaded.stats.clips, built.stats.clips);
  EXPECT_EQ(loaded.stats.total_samples, built.stats.total_samples);
  EXPECT_EQ(loaded.stats.retained_samples, built.stats.retained_samples);
  EXPECT_EQ(loaded.stats.species[0].code, built.stats.species[0].code);
  EXPECT_EQ(loaded.stats.species[0].patterns, built.stats.species[0].patterns);
}

TEST(CorpusCache, FingerprintInvalidatesOnConfigChange) {
  eval::BuildConfig base;
  base.corpus_scale = 0.05;
  base.seed = 99;
  const auto fp = eval::corpus_fingerprint(base);

  eval::BuildConfig reseeded = base;
  reseeded.seed = 100;
  EXPECT_NE(eval::corpus_fingerprint(reseeded), fp);

  eval::BuildConfig rescaled = base;
  rescaled.corpus_scale = 0.06;
  EXPECT_NE(eval::corpus_fingerprint(rescaled), fp);

  eval::BuildConfig retuned = base;
  retuned.params.trigger_sigma = 4.5;
  EXPECT_NE(eval::corpus_fingerprint(retuned), fp);

  eval::BuildConfig renoised = base;
  renoised.station.noise.wind = 0.06;
  EXPECT_NE(eval::corpus_fingerprint(renoised), fp);

  // Same config, same fingerprint (stable across calls).
  EXPECT_EQ(eval::corpus_fingerprint(base), fp);
}

TEST(CorpusCache, StaleFileForDifferentConfigMisses) {
  const dynriver::testsupport::ScopedTempDir tmp("corpus-cache-stale");
  eval::BuildConfig cfg;
  cfg.corpus_scale = 0.05;
  cfg.seed = 99;
  const auto result = eval::build_corpus(cfg);
  const auto path = eval::corpus_cache_path(tmp.path(), cfg);
  ASSERT_TRUE(eval::save_corpus(path, cfg, result));

  // A different seed must not load this file, even when pointed straight at
  // it (header fingerprint check, not just the file name).
  eval::BuildConfig other = cfg;
  other.seed = 7;
  EXPECT_FALSE(eval::load_corpus(path, other).has_value());
  EXPECT_TRUE(eval::load_corpus(path, cfg).has_value());

  // Truncated files are rejected, not crashed on.
  const auto truncated = tmp.file("trunc.drc");
  {
    std::ifstream in(path, std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    std::ofstream out(truncated, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  EXPECT_FALSE(eval::load_corpus(truncated, cfg).has_value());
}
