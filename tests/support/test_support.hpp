// Shared helpers for the dynriver test suites.
//
// Replaces the per-suite copies of temp-file bookkeeping, tolerance
// comparators, synthetic-signal generators, and fixed-seed station
// recordings that used to be duplicated across tests/*.cpp.
#pragma once

#include <gtest/gtest.h>

#include <complex>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "synth/station.hpp"

namespace dynriver::testsupport {

// ---------------------------------------------------------------------------
// Temp-dir fixture
// ---------------------------------------------------------------------------

/// RAII directory under the system temp dir, recursively removed on
/// destruction. Usable standalone or via TempDirTest.
class ScopedTempDir {
 public:
  /// @param tag short human-readable component of the directory name.
  explicit ScopedTempDir(const std::string& tag = "dynriver");
  ~ScopedTempDir();

  ScopedTempDir(const ScopedTempDir&) = delete;
  ScopedTempDir& operator=(const ScopedTempDir&) = delete;

  [[nodiscard]] const std::filesystem::path& path() const { return dir_; }
  /// Path of a (not yet created) file inside the directory.
  [[nodiscard]] std::filesystem::path file(const std::string& name) const {
    return dir_ / name;
  }

 private:
  std::filesystem::path dir_;
};

/// gtest fixture owning a fresh ScopedTempDir per test.
class TempDirTest : public ::testing::Test {
 protected:
  [[nodiscard]] const std::filesystem::path& temp_dir() const {
    return dir_.path();
  }
  [[nodiscard]] std::filesystem::path temp_file(const std::string& name) const {
    return dir_.file(name);
  }

 private:
  ScopedTempDir dir_;
};

// ---------------------------------------------------------------------------
// Corruption drills
// ---------------------------------------------------------------------------
//
// Shared sweeps for the "hostile bytes" suites: every decoder that reads
// untrusted input gets the same exhaustive single-bit-flip and
// truncate-at-every-byte treatment (segment files, flat record logs, wire
// frames). Promoted from per-suite copies in test_river_segment_store.

/// Whole file as bytes; ADD_FAILUREs (and returns empty) if it cannot open.
std::vector<std::uint8_t> read_file_bytes(const std::filesystem::path& path);

/// Truncate-and-write the file to exactly these bytes.
void write_file_bytes(const std::filesystem::path& path,
                      const std::uint8_t* data, std::size_t size);
void write_file_bytes(const std::filesystem::path& path,
                      const std::vector<std::uint8_t>& bytes);

/// In-memory sweep: for every byte position not excused by skip(), call
/// check(damaged, at) with bit 0 of byte `at` flipped. The pristine buffer
/// is never modified.
void sweep_bit_flips(
    const std::vector<std::uint8_t>& pristine,
    const std::function<void(const std::vector<std::uint8_t>&, std::size_t)>&
        check,
    const std::function<bool(std::size_t)>& skip = {});

/// On-disk sweep: snapshot the file, then for every byte position not
/// excused by skip() rewrite it with bit 0 of that byte flipped and call
/// check(at). The pristine file is restored afterwards — including when a
/// check throws or fails fatally (RAII).
void sweep_file_bit_flips(const std::filesystem::path& path,
                          const std::function<void(std::size_t)>& check,
                          const std::function<bool(std::size_t)>& skip = {});

/// On-disk sweep: truncate the file to every length in {0, stride,
/// 2*stride, ...} strictly below its size and call check(len); restores the
/// pristine file afterwards exactly like sweep_file_bit_flips.
void sweep_file_truncations(const std::filesystem::path& path,
                            const std::function<void(std::size_t)>& check,
                            std::size_t stride = 1);

// ---------------------------------------------------------------------------
// Tolerance comparators
// ---------------------------------------------------------------------------

/// Largest absolute element-wise difference; ADD_FAILUREs on size mismatch
/// and returns +inf so callers' EXPECT_LT comparisons fail loudly.
double max_abs_error(const std::vector<std::complex<double>>& a,
                     const std::vector<std::complex<double>>& b);
double max_abs_error(const std::vector<float>& a, const std::vector<float>& b);
double max_abs_error(const std::vector<double>& a,
                     const std::vector<double>& b);

// ---------------------------------------------------------------------------
// Deterministic synthetic signals
// ---------------------------------------------------------------------------

/// Uniform [-1,1) complex samples from a fixed mt19937 seed.
std::vector<std::complex<double>> random_complex_signal(std::size_t n,
                                                        unsigned seed);

/// Gaussian noise (sigma 0.1) with one continuous 0.05-cycles/sample tone of
/// amplitude 0.8 added over [tone_start, tone_start + tone_len).
std::vector<float> noise_with_tone(std::size_t n, std::size_t tone_start,
                                   std::size_t tone_len, unsigned seed);

/// Noise with a syllable-like event: tone bursts of 1200 samples separated
/// by 600-sample gaps (the envelope structure real vocalizations have).
std::vector<float> noise_with_bursts(std::size_t n, std::size_t start,
                                     std::size_t len, unsigned seed);

/// Periodic signal with one planted anomaly (a phase-inverted cycle).
std::vector<float> periodic_with_anomaly(std::size_t n, std::size_t period,
                                         std::size_t anomaly_at);

// ---------------------------------------------------------------------------
// Fixed-seed synth station recordings
// ---------------------------------------------------------------------------

/// Record one clip from a default-parameter SensorStation with the given
/// singers. Distractors default OFF so tests see exactly the singers they
/// asked for; pass the station default (0.15) to restore them.
synth::ClipRecording record_station_clip(
    std::uint64_t seed, const std::vector<synth::SpeciesId>& singers,
    double distractor_probability = 0.0);

}  // namespace dynriver::testsupport
