#include "test_support.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <fstream>
#include <iterator>
#include <limits>
#include <numbers>
#include <random>

#include <unistd.h>

namespace dynriver::testsupport {

namespace fs = std::filesystem;

ScopedTempDir::ScopedTempDir(const std::string& tag) {
  static std::atomic<std::uint64_t> counter{0};
  const auto base = fs::temp_directory_path();
  // Distinguish parallel ctest processes by pid, same-process reuse by counter.
  const auto unique = tag + "_" + std::to_string(::getpid()) + "_" +
                      std::to_string(counter.fetch_add(1));
  dir_ = base / unique;
  fs::create_directories(dir_);
}

ScopedTempDir::~ScopedTempDir() {
  std::error_code ec;  // best effort: never throw from a destructor
  fs::remove_all(dir_, ec);
}

std::vector<std::uint8_t> read_file_bytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    ADD_FAILURE() << "cannot open " << path;
    return {};
  }
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_file_bytes(const fs::path& path, const std::uint8_t* data,
                      std::size_t size) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(data),
            static_cast<std::streamsize>(size));
  ASSERT_TRUE(out.good()) << "cannot write " << path;
}

void write_file_bytes(const fs::path& path,
                      const std::vector<std::uint8_t>& bytes) {
  write_file_bytes(path, bytes.data(), bytes.size());
}

namespace {

/// Restores a file to its snapshotted bytes on scope exit, so a sweep that
/// fails (or throws) mid-way never leaves the fixture's file damaged.
class PristineFileGuard {
 public:
  explicit PristineFileGuard(fs::path path)
      : path_(std::move(path)), pristine_(read_file_bytes(path_)) {}
  ~PristineFileGuard() { write_file_bytes(path_, pristine_); }
  PristineFileGuard(const PristineFileGuard&) = delete;
  PristineFileGuard& operator=(const PristineFileGuard&) = delete;

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const {
    return pristine_;
  }

 private:
  fs::path path_;
  std::vector<std::uint8_t> pristine_;
};

}  // namespace

void sweep_bit_flips(
    const std::vector<std::uint8_t>& pristine,
    const std::function<void(const std::vector<std::uint8_t>&, std::size_t)>&
        check,
    const std::function<bool(std::size_t)>& skip) {
  std::vector<std::uint8_t> damaged = pristine;
  for (std::size_t at = 0; at < pristine.size(); ++at) {
    if (skip && skip(at)) continue;
    damaged[at] = static_cast<std::uint8_t>(damaged[at] ^ 0x01U);
    check(damaged, at);
    damaged[at] = pristine[at];
  }
}

void sweep_file_bit_flips(const fs::path& path,
                          const std::function<void(std::size_t)>& check,
                          const std::function<bool(std::size_t)>& skip) {
  PristineFileGuard guard(path);
  sweep_bit_flips(
      guard.bytes(),
      [&](const std::vector<std::uint8_t>& damaged, std::size_t at) {
        write_file_bytes(path, damaged);
        check(at);
      },
      skip);
}

void sweep_file_truncations(const fs::path& path,
                            const std::function<void(std::size_t)>& check,
                            std::size_t stride) {
  ASSERT_GT(stride, 0U);
  PristineFileGuard guard(path);
  for (std::size_t len = 0; len < guard.bytes().size(); len += stride) {
    write_file_bytes(path, guard.bytes().data(), len);
    check(len);
  }
}

namespace {
template <typename T>
double max_abs_error_impl(const std::vector<T>& a, const std::vector<T>& b) {
  if (a.size() != b.size()) {
    ADD_FAILURE() << "size mismatch: " << a.size() << " vs " << b.size();
    return std::numeric_limits<double>::infinity();
  }
  double err = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    err = std::max(err, static_cast<double>(std::abs(a[i] - b[i])));
  }
  return err;
}
}  // namespace

double max_abs_error(const std::vector<std::complex<double>>& a,
                     const std::vector<std::complex<double>>& b) {
  return max_abs_error_impl(a, b);
}

double max_abs_error(const std::vector<float>& a, const std::vector<float>& b) {
  return max_abs_error_impl(a, b);
}

double max_abs_error(const std::vector<double>& a,
                     const std::vector<double>& b) {
  return max_abs_error_impl(a, b);
}

std::vector<std::complex<double>> random_complex_signal(std::size_t n,
                                                        unsigned seed) {
  std::mt19937 gen(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<std::complex<double>> out(n);
  for (auto& v : out) v = {dist(gen), dist(gen)};
  return out;
}

std::vector<float> noise_with_tone(std::size_t n, std::size_t tone_start,
                                   std::size_t tone_len, unsigned seed) {
  std::mt19937 gen(seed);
  std::normal_distribution<float> dist(0.0F, 0.1F);
  std::vector<float> x(n);
  for (auto& v : x) v = dist(gen);
  for (std::size_t i = tone_start; i < std::min(n, tone_start + tone_len); ++i) {
    x[i] += static_cast<float>(
        0.8 * std::sin(2.0 * std::numbers::pi * 0.05 * static_cast<double>(i)));
  }
  return x;
}

std::vector<float> noise_with_bursts(std::size_t n, std::size_t start,
                                     std::size_t len, unsigned seed) {
  std::mt19937 gen(seed);
  std::normal_distribution<float> dist(0.0F, 0.1F);
  std::vector<float> x(n);
  for (auto& v : x) v = dist(gen);
  for (std::size_t i = start; i < std::min(n, start + len); ++i) {
    const std::size_t phase = (i - start) % 1800;
    if (phase < 1200) {
      x[i] += static_cast<float>(
          0.8 * std::sin(2.0 * std::numbers::pi * 0.05 * static_cast<double>(i)));
    }
  }
  return x;
}

std::vector<float> periodic_with_anomaly(std::size_t n, std::size_t period,
                                         std::size_t anomaly_at) {
  std::vector<float> xs(n);
  for (std::size_t i = 0; i < n; ++i) {
    double v = std::sin(2.0 * std::numbers::pi * static_cast<double>(i) /
                        static_cast<double>(period));
    if (i >= anomaly_at && i < anomaly_at + period) v = -v * 0.4 + 0.5;
    xs[i] = static_cast<float>(v);
  }
  return xs;
}

synth::ClipRecording record_station_clip(
    std::uint64_t seed, const std::vector<synth::SpeciesId>& singers,
    double distractor_probability) {
  synth::StationParams sp;
  sp.distractor_probability = distractor_probability;
  synth::SensorStation station(sp, seed);
  return station.record_clip(singers);
}

}  // namespace dynriver::testsupport
