// DSP odds and ends: windows, WAV container, spectrogram, biquads, resampler.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <numbers>
#include <span>
#include <vector>

#include "common/contracts.hpp"
#include "dsp/biquad.hpp"
#include "dsp/resample.hpp"
#include "dsp/spectrogram.hpp"
#include "dsp/wav.hpp"
#include "dsp/window.hpp"
#include "test_support.hpp"

namespace dsp = dynriver::dsp;

TEST(Window, WelchShape) {
  const auto w = dsp::make_window(dsp::WindowKind::kWelch, 5);
  ASSERT_EQ(w.size(), 5u);
  EXPECT_NEAR(w[0], 0.0F, 1e-6);
  EXPECT_NEAR(w[2], 1.0F, 1e-6);  // peak at center
  EXPECT_NEAR(w[4], 0.0F, 1e-6);
  EXPECT_NEAR(w[1], 0.75F, 1e-6);  // 1 - (1/2)^2
}

TEST(Window, HannAndHammingEndpoints) {
  const auto hann = dsp::make_window(dsp::WindowKind::kHann, 9);
  EXPECT_NEAR(hann.front(), 0.0F, 1e-6);
  EXPECT_NEAR(hann[4], 1.0F, 1e-6);
  const auto hamming = dsp::make_window(dsp::WindowKind::kHamming, 9);
  EXPECT_NEAR(hamming.front(), 0.08F, 1e-6);
  EXPECT_NEAR(hamming[4], 1.0F, 1e-6);
}

TEST(Window, SymmetryForAllKinds) {
  for (const auto kind : {dsp::WindowKind::kRectangular, dsp::WindowKind::kWelch,
                          dsp::WindowKind::kHann, dsp::WindowKind::kHamming}) {
    const auto w = dsp::make_window(kind, 64);
    for (std::size_t i = 0; i < 32; ++i) {
      EXPECT_NEAR(w[i], w[63 - i], 1e-6) << dsp::to_string(kind) << " i=" << i;
    }
  }
}

TEST(Window, NameRoundTrip) {
  for (const auto kind : {dsp::WindowKind::kRectangular, dsp::WindowKind::kWelch,
                          dsp::WindowKind::kHann, dsp::WindowKind::kHamming}) {
    EXPECT_EQ(dsp::window_from_string(dsp::to_string(kind)), kind);
  }
  EXPECT_THROW((void)dsp::window_from_string("kaiser"), std::invalid_argument);
}

TEST(Window, ApplyScalesSamples) {
  std::vector<float> data(8, 2.0F);
  dsp::apply_window(data, dsp::WindowKind::kWelch);
  EXPECT_NEAR(data.front(), 0.0F, 1e-6);
  // Power helper is positive and below n.
  const auto w = dsp::make_window(dsp::WindowKind::kWelch, 8);
  const double power = dsp::window_power(w);
  EXPECT_GT(power, 0.0);
  EXPECT_LT(power, 8.0);
}

TEST(Wav, EncodeDecodeRoundTrip) {
  dsp::WavClip clip;
  clip.sample_rate = 21600;
  clip.channels = 1;
  clip.samples.resize(1000);
  for (std::size_t i = 0; i < clip.samples.size(); ++i) {
    clip.samples[i] = static_cast<float>(std::sin(0.05 * static_cast<double>(i)));
  }
  const auto decoded = dsp::decode_wav(dsp::encode_wav(clip));
  EXPECT_EQ(decoded.sample_rate, clip.sample_rate);
  EXPECT_EQ(decoded.channels, 1);
  ASSERT_EQ(decoded.samples.size(), clip.samples.size());
  for (std::size_t i = 0; i < clip.samples.size(); i += 37) {
    EXPECT_NEAR(decoded.samples[i], clip.samples[i], 1.0F / 16000.0F);
  }
}

TEST(Wav, ClampsOutOfRangeSamples) {
  dsp::WavClip clip;
  clip.sample_rate = 8000;
  clip.samples = {2.0F, -3.0F};
  const auto decoded = dsp::decode_wav(dsp::encode_wav(clip));
  EXPECT_NEAR(decoded.samples[0], 1.0F, 1e-3);
  EXPECT_NEAR(decoded.samples[1], -1.0F, 1e-3);
}

TEST(Wav, FileRoundTrip) {
  const dynriver::testsupport::ScopedTempDir tmp("wav");
  const auto path = tmp.file("roundtrip.wav");
  dsp::WavClip clip;
  clip.sample_rate = 21600;
  clip.samples.assign(500, 0.25F);
  dsp::write_wav(path, clip);
  const auto loaded = dsp::read_wav(path);
  EXPECT_EQ(loaded.samples.size(), 500u);
  EXPECT_NEAR(loaded.duration_seconds(), 500.0 / 21600.0, 1e-9);
}

TEST(Wav, RejectsGarbage) {
  const std::vector<std::uint8_t> garbage = {'n', 'o', 't', 'w', 'a', 'v', '!'};
  EXPECT_THROW((void)dsp::decode_wav(garbage), dsp::WavError);
}

namespace {

template <typename T>
void put_le(std::vector<std::uint8_t>& out, T value) {
  std::uint8_t raw[sizeof(T)];
  std::memcpy(raw, &value, sizeof(T));
  out.insert(out.end(), raw, raw + sizeof(T));
}

void put_tag(std::vector<std::uint8_t>& out, const char* tag) {
  // Byte-wise on purpose: GCC 12's -Wstringop-overflow misfires on
  // vector::insert from a 4-char literal (same workaround as dsp/wav.cpp).
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(tag[i]));
  }
}

/// RIFF/WAVE container prefix followed by the caller's chunks.
std::vector<std::uint8_t> riff_wave() {
  std::vector<std::uint8_t> out;
  put_tag(out, "RIFF");
  put_le(out, std::uint32_t{36});  // riff size: untrusted, decoder ignores it
  put_tag(out, "WAVE");
  return out;
}

/// A well-formed 16-byte PCM fmt chunk.
void append_fmt(std::vector<std::uint8_t>& out, std::uint16_t channels,
                std::uint32_t rate) {
  put_tag(out, "fmt ");
  put_le(out, std::uint32_t{16});
  put_le(out, std::uint16_t{1});  // PCM
  put_le(out, channels);
  put_le(out, rate);
  put_le(out, std::uint32_t{rate * 2U * channels});  // byte rate
  put_le(out, std::uint16_t{static_cast<std::uint16_t>(2U * channels)});
  put_le(out, std::uint16_t{16});  // bits
}

}  // namespace

TEST(WavHostile, MaxChunkSizeNeverHangs) {
  // Regression: the chunk walker advanced `chunk_size + pad` in u32, so a
  // chunk declaring 0xFFFFFFFF bytes wrapped to a zero advance — an
  // infinite loop on a 13-byte file. Hostile sizes must be a clean error.
  for (const std::uint32_t hostile : {0xFFFFFFFFu, 0xFFFFFFFEu, 0x80000000u}) {
    auto bytes = riff_wave();
    put_tag(bytes, "JUNK");
    put_le(bytes, hostile);
    bytes.push_back(0);  // one byte of "chunk body"
    EXPECT_THROW((void)dsp::decode_wav(bytes), dsp::WavError) << hostile;
  }
}

TEST(WavHostile, DataSizeBeyondBufferRejectedBeforeAllocation) {
  // The declared data size must be validated against the bytes actually
  // present before it ever reaches a resize: an attacker-controlled length
  // is not an allocation size.
  auto bytes = riff_wave();
  append_fmt(bytes, 1, 8000);
  put_tag(bytes, "data");
  put_le(bytes, std::uint32_t{0xFFFFFFF0u});
  bytes.push_back(0);
  EXPECT_THROW((void)dsp::decode_wav(bytes), dsp::WavError);
}

TEST(WavHostile, ZeroChannelsRejected) {
  auto bytes = riff_wave();
  append_fmt(bytes, 0, 8000);
  put_tag(bytes, "data");
  put_le(bytes, std::uint32_t{4});
  put_le(bytes, std::uint32_t{0});
  EXPECT_THROW((void)dsp::decode_wav(bytes), dsp::WavError);
}

TEST(WavHostile, ShortFmtChunkRejected) {
  auto bytes = riff_wave();
  put_tag(bytes, "fmt ");
  put_le(bytes, std::uint32_t{8});  // PCM fmt needs 16 bytes
  for (int i = 0; i < 8; ++i) bytes.push_back(0);
  put_tag(bytes, "data");
  put_le(bytes, std::uint32_t{0});
  EXPECT_THROW((void)dsp::decode_wav(bytes), dsp::WavError);
}

TEST(WavHostile, EncoderRejectsUnrepresentableGeometry) {
  // The encoder's header fields are u16/u32; geometry that cannot fit must
  // throw instead of wrapping into a silently-corrupt header.
  dsp::WavClip wide;
  wide.sample_rate = 8000;
  wide.channels = 0xFFFF;  // block align (channels * 2) exceeds u16
  wide.samples = {0.0F};
  EXPECT_THROW((void)dsp::encode_wav(wide), dsp::WavError);

  dsp::WavClip fast;
  fast.sample_rate = 0xFFFFFFFFu;  // byte rate (rate * block align) wraps u32
  fast.channels = 1;
  fast.samples = {0.0F};
  EXPECT_THROW((void)dsp::encode_wav(fast), dsp::WavError);
}

TEST(WavHostile, TruncatedAtEveryByteIsCleanError) {
  // Every prefix of a real clip must be a WavError (or, for a short data
  // chunk, a smaller clip) — never a crash, hang, or over-read.
  dsp::WavClip clip;
  clip.sample_rate = 8000;
  clip.channels = 1;
  clip.samples = {0.1F, -0.1F, 0.2F, -0.2F};
  const auto full = dsp::encode_wav(clip);
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    const std::span<const std::uint8_t> prefix(full.data(), cut);
    try {
      const auto decoded = dsp::decode_wav(prefix);
      // Cuts inside the data chunk body decode as a shorter clip.
      EXPECT_LE(decoded.samples.size(), clip.samples.size()) << "cut " << cut;
    } catch (const dsp::WavError&) {
      // expected for cuts before the data chunk header
    }
  }
}

TEST(Wav, StereoDownmix) {
  dsp::WavClip clip;
  clip.sample_rate = 8000;
  clip.channels = 2;
  clip.samples = {1.0F, 0.0F, 0.5F, 0.5F};  // interleaved L R
  const auto mono = dsp::to_mono(clip);
  ASSERT_EQ(mono.size(), 2u);
  EXPECT_FLOAT_EQ(mono[0], 0.5F);
  EXPECT_FLOAT_EQ(mono[1], 0.5F);
}

TEST(Spectrogram, ToneAppearsAtCorrectBinAndAllFrames) {
  dsp::SpectrogramParams params;
  params.frame_size = 256;
  params.hop = 128;
  params.sample_rate = 8192.0;
  std::vector<float> signal(4096);
  for (std::size_t i = 0; i < signal.size(); ++i) {
    signal[i] = static_cast<float>(
        std::sin(2.0 * std::numbers::pi * 1024.0 * static_cast<double>(i) /
                 params.sample_rate));
  }
  const auto spec = dsp::stft(signal, params);
  ASSERT_GT(spec.num_frames(), 10u);
  EXPECT_EQ(spec.num_bins(), 129u);
  const std::size_t expected_bin = 32;  // 1024 Hz / (8192/256)
  for (const auto& frame : spec.frames) {
    std::size_t peak = 0;
    for (std::size_t k = 1; k < frame.size(); ++k) {
      if (frame[k] > frame[peak]) peak = k;
    }
    EXPECT_EQ(peak, expected_bin);
  }
  EXPECT_NEAR(spec.bin_freq(expected_bin), 1024.0, 1e-9);
  EXPECT_NEAR(spec.frame_time(2), 2.0 * 128.0 / 8192.0, 1e-12);
}

TEST(Spectrogram, ShortSignalYieldsNoFrames) {
  dsp::SpectrogramParams params;
  params.frame_size = 256;
  const std::vector<float> tiny(100, 1.0F);
  EXPECT_EQ(dsp::stft(tiny, params).num_frames(), 0u);
}

TEST(Oscillogram, NormalizationCentersAndScales) {
  const std::vector<float> signal = {1.0F, 2.0F, 3.0F};
  const auto norm = dsp::normalize_oscillogram(signal);
  EXPECT_FLOAT_EQ(norm[0], -1.0F);
  EXPECT_FLOAT_EQ(norm[1], 0.0F);
  EXPECT_FLOAT_EQ(norm[2], 1.0F);
  // Constant signal -> all zeros, no division by zero.
  const auto flat = dsp::normalize_oscillogram(std::vector<float>(5, 7.0F));
  for (const float v : flat) EXPECT_FLOAT_EQ(v, 0.0F);
}

TEST(AsciiRendering, ProducesNonEmptyArt) {
  dsp::SpectrogramParams params;
  params.frame_size = 128;
  params.hop = 64;
  params.sample_rate = 8192.0;
  std::vector<float> signal(8192);
  for (std::size_t i = 0; i < signal.size(); ++i) {
    signal[i] = static_cast<float>(std::sin(0.7 * static_cast<double>(i)));
  }
  const auto spec = dsp::stft(signal, params);
  const auto art = dsp::ascii_spectrogram(spec, 40, 10);
  EXPECT_GT(art.size(), 400u);
  const auto osc = dsp::ascii_oscillogram(signal, 40, 6);
  EXPECT_GT(osc.size(), 240u);
}

TEST(Biquad, LowPassAttenuatesHighFrequencies) {
  constexpr double kRate = 21600.0;
  auto lp = dsp::Biquad::low_pass(kRate, 500.0);
  double low_energy = 0.0;
  double high_energy = 0.0;
  for (int i = 0; i < 4096; ++i) {
    const auto low_in = static_cast<float>(
        std::sin(2.0 * std::numbers::pi * 100.0 * i / kRate));
    low_energy += std::pow(lp.step(low_in), 2);
  }
  lp.reset_state();
  for (int i = 0; i < 4096; ++i) {
    const auto high_in = static_cast<float>(
        std::sin(2.0 * std::numbers::pi * 5000.0 * i / kRate));
    high_energy += std::pow(lp.step(high_in), 2);
  }
  EXPECT_GT(low_energy, high_energy * 50.0);
}

TEST(Biquad, HighPassAttenuatesLowFrequencies) {
  constexpr double kRate = 21600.0;
  auto hp = dsp::Biquad::high_pass(kRate, 1000.0);
  double low = 0.0, high = 0.0;
  for (int i = 0; i < 4096; ++i) {
    low += std::pow(hp.step(static_cast<float>(
               std::sin(2.0 * std::numbers::pi * 100.0 * i / kRate))), 2);
  }
  hp.reset_state();
  for (int i = 0; i < 4096; ++i) {
    high += std::pow(hp.step(static_cast<float>(
                std::sin(2.0 * std::numbers::pi * 5000.0 * i / kRate))), 2);
  }
  EXPECT_GT(high, low * 50.0);
}

TEST(Biquad, BandPassSelectsCenter) {
  constexpr double kRate = 21600.0;
  auto bp = dsp::Biquad::band_pass(kRate, 3000.0, 2.0);
  double center = 0.0, off = 0.0;
  for (int i = 0; i < 4096; ++i) {
    center += std::pow(bp.step(static_cast<float>(
                  std::sin(2.0 * std::numbers::pi * 3000.0 * i / kRate))), 2);
  }
  bp.reset_state();
  for (int i = 0; i < 4096; ++i) {
    off += std::pow(bp.step(static_cast<float>(
               std::sin(2.0 * std::numbers::pi * 500.0 * i / kRate))), 2);
  }
  EXPECT_GT(center, off * 10.0);
}

TEST(Biquad, InvalidParamsThrow) {
  EXPECT_THROW((void)dsp::Biquad::low_pass(8000.0, 5000.0),
               dynriver::ContractViolation);  // above Nyquist
  EXPECT_THROW((void)dsp::Biquad::high_pass(0.0, 100.0),
               dynriver::ContractViolation);
}

TEST(Resample, IdentityWhenRatesMatch) {
  const std::vector<float> x = {1.0F, 2.0F, 3.0F};
  EXPECT_EQ(dsp::resample_linear(x, 8000, 8000), x);
}

TEST(Resample, PreservesToneFrequency) {
  constexpr double kFrom = 44100.0;
  constexpr double kTo = 21600.0;
  std::vector<float> x(44100);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<float>(
        std::sin(2.0 * std::numbers::pi * 2000.0 * static_cast<double>(i) / kFrom));
  }
  const auto y = dsp::resample_linear(x, kFrom, kTo);
  EXPECT_NEAR(static_cast<double>(y.size()), kTo, 3.0);

  // Count zero crossings: ~2 * 2000 per second.
  int crossings = 0;
  for (std::size_t i = 1; i < y.size(); ++i) {
    if ((y[i - 1] < 0) != (y[i] < 0)) ++crossings;
  }
  EXPECT_NEAR(crossings, 4000, 40);
}

TEST(Resample, UpsamplingInterpolatesLinearly) {
  const std::vector<float> x = {0.0F, 1.0F};
  const auto y = dsp::resample_linear(x, 1000, 2000);
  ASSERT_EQ(y.size(), 3u);
  EXPECT_FLOAT_EQ(y[0], 0.0F);
  EXPECT_FLOAT_EQ(y[1], 0.5F);
  EXPECT_FLOAT_EQ(y[2], 1.0F);
}

TEST(Resample, IdentityRoundTripIsExact) {
  // from_rate == to_rate must return the input bit-for-bit, even for
  // awkward lengths and non-integer rates.
  for (const std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{900},
                              std::size_t{1001}}) {
    std::vector<float> x(n);
    for (std::size_t i = 0; i < n; ++i) {
      x[i] = static_cast<float>(std::sin(0.37 * static_cast<double>(i)));
    }
    const auto y = dsp::resample_linear(x, 21600.0, 21600.0);
    ASSERT_EQ(y.size(), x.size()) << "n=" << n;
    EXPECT_EQ(dynriver::testsupport::max_abs_error(y, x), 0.0) << "n=" << n;
  }
}

TEST(Resample, RatioRoundTripRecoversBandLimitedSignal) {
  // Up 2x then back down: linear interpolation is exact at original sample
  // positions for the upsample, so the round trip must be near-lossless for
  // a smooth, oversampled signal.
  constexpr std::size_t kN = 4096;
  std::vector<float> x(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    x[i] = static_cast<float>(
        std::sin(2.0 * std::numbers::pi * 100.0 * static_cast<double>(i) / 21600.0));
  }
  const auto up = dsp::resample_linear(x, 21600.0, 43200.0);
  const auto back = dsp::resample_linear(up, 43200.0, 21600.0);
  ASSERT_GE(back.size(), kN - 2);
  double err = 0.0;
  for (std::size_t i = 0; i + 2 < std::min(back.size(), x.size()); ++i) {
    err = std::max(err, static_cast<double>(std::abs(back[i] - x[i])));
  }
  EXPECT_LT(err, 1e-3);
}

TEST(Resample, ExtremeRatiosKeepSaneLengths) {
  const std::vector<float> x(1000, 0.5F);
  const auto down = dsp::resample_linear(x, 48000.0, 100.0);  // 480x decimation
  EXPECT_NEAR(static_cast<double>(down.size()), 1000.0 / 480.0, 2.0);
  for (const float v : down) EXPECT_FLOAT_EQ(v, 0.5F);
  const auto up = dsp::resample_linear(x, 100.0, 48000.0);  // 480x interpolation
  EXPECT_NEAR(static_cast<double>(up.size()), 1000.0 * 480.0, 481.0);
}

TEST(Biquad, StableAtExtremeQ) {
  // A Q=100 resonator rings hard but must never diverge: feed it an impulse
  // plus broadband noise and require the output envelope to stay bounded and
  // ultimately decay.
  auto filt = dsp::Biquad::band_pass(21600.0, 2000.0, 100.0);
  std::vector<float> x =
      dynriver::testsupport::noise_with_tone(21600, 2000, 4000, 5);
  x[0] = 1.0F;  // impulse on top of the noise bed
  double peak = 0.0;
  for (float& v : x) {
    v = filt.step(v);
    peak = std::max(peak, static_cast<double>(std::abs(v)));
    ASSERT_TRUE(std::isfinite(v));
  }
  EXPECT_LT(peak, 100.0);

  // After the input stops, the resonator must decay toward silence.
  double tail = 0.0;
  for (int i = 0; i < 200000; ++i) tail = std::abs(filt.step(0.0F));
  EXPECT_LT(tail, 1e-6);
}

TEST(Biquad, ExtremeQLowAndHighPassStayFinite) {
  for (const double q : {50.0, 200.0, 1000.0}) {
    auto lp = dsp::Biquad::low_pass(21600.0, 1000.0, q);
    auto hp = dsp::Biquad::high_pass(21600.0, 1000.0, q);
    const auto noise =
        dynriver::testsupport::noise_with_tone(8192, 1000, 2000, 17);
    for (const float v : noise) {
      ASSERT_TRUE(std::isfinite(lp.step(v))) << "q=" << q;
      ASSERT_TRUE(std::isfinite(hp.step(v))) << "q=" << q;
    }
  }
}
