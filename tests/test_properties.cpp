// Cross-cutting property tests: wire-format robustness under random
// corruption, MESO invariants across its parameter space, and extraction
// determinism.
#include <gtest/gtest.h>

#include <random>

#include "core/extractor.hpp"
#include "meso/classifier.hpp"
#include "river/wire.hpp"
#include "synth/station.hpp"

namespace core = dynriver::core;
namespace meso = dynriver::meso;
namespace river = dynriver::river;
namespace synth = dynriver::synth;

// -- Wire format: random single-byte corruption must never be accepted ------

class WireCorruption : public ::testing::TestWithParam<unsigned> {};

TEST_P(WireCorruption, FlippedByteIsDetectedOrChangesNothing) {
  std::mt19937 gen(GetParam());

  river::Record rec = river::Record::data(
      river::kSubtypeSpectrum, river::FloatVec(64, 1.25F));
  rec.scope_depth = 2;
  rec.set_attr("clip", std::int64_t{12});
  rec.set_attr("station", std::string("kbs"));
  const auto frame = river::encode_record(rec);

  for (int trial = 0; trial < 200; ++trial) {
    auto corrupted = frame;
    const auto pos = std::uniform_int_distribution<std::size_t>(
        0, corrupted.size() - 1)(gen);
    const auto bit = std::uniform_int_distribution<int>(0, 7)(gen);
    corrupted[pos] ^= static_cast<std::uint8_t>(1 << bit);

    // Either decoding throws (detected) -- it must never silently return a
    // different record.
    try {
      const auto decoded = river::decode_record(corrupted);
      // CRC collision for a single bit flip is impossible; the only benign
      // path would be flipping a bit back to itself, which XOR precludes.
      FAIL() << "corruption at byte " << pos << " bit " << bit
             << " was not detected";
    } catch (const river::WireError&) {
      // expected
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireCorruption, ::testing::Values(1, 2, 3, 4));

TEST(WireProperty, RoundTripRandomRecords) {
  std::mt19937 gen(99);
  std::uniform_real_distribution<float> dist(-10.0F, 10.0F);
  for (int trial = 0; trial < 100; ++trial) {
    river::Record rec;
    rec.type = static_cast<river::RecordType>(
        std::uniform_int_distribution<int>(0, 3)(gen));
    rec.subtype = std::uniform_int_distribution<std::uint32_t>(0, 2000)(gen);
    rec.scope_depth = std::uniform_int_distribution<std::uint32_t>(0, 8)(gen);
    rec.sequence = gen();
    const auto n = std::uniform_int_distribution<std::size_t>(0, 300)(gen);
    river::FloatVec payload(n);
    for (auto& v : payload) v = dist(gen);
    if (n > 0) rec.payload = std::move(payload);
    if (trial % 3 == 0) rec.set_attr("k", static_cast<double>(trial));

    const auto decoded = river::decode_record(river::encode_record(rec));
    EXPECT_TRUE(decoded == rec) << "trial " << trial;
  }
}

// -- MESO invariants across its parameter space -----------------------------

class MesoParamSweep
    : public ::testing::TestWithParam<std::tuple<double, double, std::size_t>> {
};

TEST_P(MesoParamSweep, InvariantsHoldForAllConfigurations) {
  const auto [grow, shrink, leaf] = GetParam();
  meso::MesoParams params;
  params.grow_rate = grow;
  params.shrink_rate = shrink;
  params.tree_leaf_size = leaf;
  meso::MesoClassifier clf(params);

  std::mt19937 gen(static_cast<unsigned>(static_cast<double>(leaf * 100) + grow * 10));
  std::normal_distribution<float> noise(0.0F, 0.6F);
  for (int i = 0; i < 300; ++i) {
    const int label = i % 4;
    std::vector<float> x(6);
    for (std::size_t d = 0; d < x.size(); ++d) {
      x[d] = (d % 4 == static_cast<std::size_t>(label) ? 3.0F : 0.0F) +
             noise(gen);
    }
    clf.train(x, label);

    // Invariants after every single training step:
    EXPECT_EQ(clf.pattern_count(), static_cast<std::size_t>(i + 1));
    EXPECT_GE(clf.sphere_count(), 1u);
    EXPECT_LE(clf.sphere_count(), clf.pattern_count());
    EXPECT_GE(clf.delta(), 0.0);
  }
  // Sphere membership partitions the training set.
  std::size_t members = 0;
  for (const auto& s : clf.spheres()) members += s.size();
  EXPECT_EQ(members, clf.pattern_count());

  // Classification still works on the exact blob centers.
  for (int label = 0; label < 4; ++label) {
    std::vector<float> center(6);
    for (std::size_t d = 0; d < center.size(); ++d) {
      center[d] = (d % 4 == static_cast<std::size_t>(label)) ? 3.0F : 0.0F;
    }
    EXPECT_EQ(clf.classify(center), label)
        << "grow=" << grow << " shrink=" << shrink << " leaf=" << leaf;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, MesoParamSweep,
    ::testing::Combine(::testing::Values(0.0, 0.05, 0.3),
                       ::testing::Values(0.0, 0.1, 0.5),
                       ::testing::Values(1u, 4u, 32u)));

// -- Extraction determinism and monotone reduction ---------------------------

TEST(ExtractionProperty, DeterministicAcrossRuns) {
  synth::StationParams sp;
  synth::SensorStation station(sp, 777);
  const auto clip = station.record_clip({synth::SpeciesId::kNOCA});

  const core::EnsembleExtractor extractor{core::PipelineParams{}};
  const auto a = extractor.extract(clip.clip.samples);
  const auto b = extractor.extract(clip.clip.samples);
  ASSERT_EQ(a.ensembles.size(), b.ensembles.size());
  for (std::size_t i = 0; i < a.ensembles.size(); ++i) {
    EXPECT_EQ(a.ensembles[i].start_sample, b.ensembles[i].start_sample);
    EXPECT_EQ(a.ensembles[i].samples, b.ensembles[i].samples);
  }
}

class TriggerSigmaSweep : public ::testing::TestWithParam<double> {};

TEST_P(TriggerSigmaSweep, HigherThresholdNeverExtractsMore) {
  synth::StationParams sp;
  sp.distractor_probability = 0.0;
  synth::SensorStation station(sp, 888);
  const auto clip = station.record_clip(
      {synth::SpeciesId::kBCCH, synth::SpeciesId::kTUTI});

  core::PipelineParams lo;
  lo.trigger_sigma = GetParam();
  core::PipelineParams hi;
  hi.trigger_sigma = GetParam() * 2.0;

  const auto kept_lo = core::EnsembleExtractor(lo)
                           .extract(clip.clip.samples)
                           .retained_samples();
  const auto kept_hi = core::EnsembleExtractor(hi)
                           .extract(clip.clip.samples)
                           .retained_samples();
  // A stricter trigger keeps at most marginally more (merge-gap boundary
  // effects) and usually strictly less.
  EXPECT_LE(kept_hi, kept_lo + static_cast<std::size_t>(
                                   lo.merge_gap_samples));
}

INSTANTIATE_TEST_SUITE_P(Sigmas, TriggerSigmaSweep,
                         ::testing::Values(2.0, 3.0, 5.0));
