// Wire format: round-trips for every payload/attribute shape, checksum
// detection, truncation handling, incremental decoding under arbitrary
// fragmentation, packed payloads, and the allocation-free view decoder.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

#include "river/wire.hpp"
#include "test_support.hpp"

namespace river = dynriver::river;
namespace testsupport = dynriver::testsupport;
using river::Record;
using river::RecordType;

namespace {
Record rich_record() {
  auto rec = Record::data(river::kSubtypeSpectrum, {1.5F, -2.25F, 0.0F, 1e-7F});
  rec.scope_depth = 3;
  rec.scope_type = river::kScopeEnsemble;
  rec.sequence = 0xDEADBEEFCAFEull;
  rec.set_attr("rate", 21600.0);
  rec.set_attr("clip", std::int64_t{-9});
  rec.set_attr("station", std::string("kbs"));
  return rec;
}

/// Audio-shaped record whose samples sit on the PCM16 grid (n/32768), the
/// form every ADC/WAV sample takes — the packed codec's best case.
Record quantized_audio_record(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> dist(-0.4f, 0.4f);
  river::FloatVec v(n);
  for (auto& x : v) {
    x = static_cast<float>(std::lround(dist(rng) * 32767.0f)) / 32768.0f;
  }
  auto rec = Record::data(river::kSubtypeAudio, std::move(v));
  rec.set_attr("rate", 21600.0);
  rec.set_attr("start", std::int64_t{12345});
  return rec;
}
}  // namespace

TEST(Wire, RoundTripRichRecord) {
  const Record original = rich_record();
  const auto frame = river::encode_record(original);
  const Record decoded = river::decode_record(frame);
  EXPECT_TRUE(decoded == original);
}

TEST(Wire, RoundTripAllRecordTypes) {
  for (const auto type : {RecordType::kData, RecordType::kOpenScope,
                          RecordType::kCloseScope, RecordType::kBadCloseScope}) {
    Record rec;
    rec.type = type;
    rec.scope_type = river::kScopeClip;
    const Record decoded = river::decode_record(river::encode_record(rec));
    EXPECT_TRUE(decoded == rec);
  }
}

TEST(Wire, RoundTripAllPayloadKinds) {
  Record empty;
  EXPECT_TRUE(river::decode_record(river::encode_record(empty)) == empty);

  const auto bytes = Record::data_bytes(river::kSubtypeRaw, {0, 255, 128});
  EXPECT_TRUE(river::decode_record(river::encode_record(bytes)) == bytes);

  const auto floats = Record::data(river::kSubtypeAudio, {1.0F, -1.0F});
  EXPECT_TRUE(river::decode_record(river::encode_record(floats)) == floats);

  const auto cplx =
      Record::data_complex(river::kSubtypeComplex, {{3.0F, 4.0F}});
  EXPECT_TRUE(river::decode_record(river::encode_record(cplx)) == cplx);
}

TEST(Wire, RoundTripLargePayload) {
  river::FloatVec big(100000);
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = static_cast<float>(i);
  const auto rec = Record::data(river::kSubtypeAudio, std::move(big));
  EXPECT_TRUE(river::decode_record(river::encode_record(rec)) == rec);
}

TEST(Wire, BadMagicRejected) {
  auto frame = river::encode_record(rich_record());
  frame[0] ^= 0xFF;
  EXPECT_THROW((void)river::decode_record(frame), river::WireError);
}

TEST(Wire, CorruptionDetectedByChecksum) {
  auto frame = river::encode_record(rich_record());
  frame[frame.size() / 2] ^= 0x01;  // flip one payload/attr bit
  EXPECT_THROW((void)river::decode_record(frame), river::WireError);
}

TEST(Wire, TruncatedFrameRejected) {
  const auto frame = river::encode_record(rich_record());
  for (const std::size_t cut : {std::size_t{1}, frame.size() / 2, frame.size() - 1}) {
    std::size_t consumed = 0;
    EXPECT_THROW((void)river::decode_record(frame.data(), cut, consumed),
                 river::WireError);
  }
}

TEST(Wire, TrailingBytesRejected) {
  auto frame = river::encode_record(rich_record());
  frame.push_back(0);
  EXPECT_THROW((void)river::decode_record(frame), river::WireError);
}

TEST(Wire, Crc32KnownVector) {
  // CRC-32 of "123456789" is 0xCBF43926 (IEEE 802.3).
  const std::uint8_t data[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(river::crc32(data, sizeof(data)), 0xCBF43926u);
}

// Incremental decoder must produce identical records regardless of how the
// byte stream is fragmented.
class WireDecoderFragmentation : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WireDecoderFragmentation, ReassemblesChunkedStream) {
  const std::size_t chunk = GetParam();
  std::vector<Record> originals;
  std::vector<std::uint8_t> stream;
  for (int i = 0; i < 25; ++i) {
    auto rec = rich_record();
    rec.sequence = static_cast<std::uint64_t>(i);
    const auto frame = river::encode_record(rec);
    stream.insert(stream.end(), frame.begin(), frame.end());
    originals.push_back(std::move(rec));
  }

  river::WireDecoder decoder;
  std::vector<Record> decoded;
  Record rec;
  for (std::size_t off = 0; off < stream.size(); off += chunk) {
    const std::size_t len = std::min(chunk, stream.size() - off);
    decoder.feed(stream.data() + off, len);
    while (decoder.next(rec)) decoded.push_back(rec);
  }
  ASSERT_EQ(decoded.size(), originals.size());
  for (std::size_t i = 0; i < originals.size(); ++i) {
    EXPECT_TRUE(decoded[i] == originals[i]) << "record " << i;
  }
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(ChunkSizes, WireDecoderFragmentation,
                         ::testing::Values(1, 3, 7, 16, 64, 333, 4096, 1 << 20));

TEST(WireDecoder, SurfacesCorruptionMidStream) {
  auto frame = river::encode_record(rich_record());
  frame[10] ^= 0x40;  // corrupt after the magic
  river::WireDecoder decoder;
  decoder.feed(frame.data(), frame.size());
  Record rec;
  EXPECT_THROW((void)decoder.next(rec), river::WireError);
}

// ---------------------------------------------------------------------------
// Packed payloads (pay_tag 4)
// ---------------------------------------------------------------------------

TEST(WirePacked, RoundTripBitIdentical) {
  for (const std::size_t n : {std::size_t{1}, std::size_t{127}, std::size_t{128},
                              std::size_t{129}, std::size_t{900},
                              std::size_t{4096}}) {
    const Record original = quantized_audio_record(n, 42 + static_cast<unsigned>(n));
    const auto frame =
        river::encode_record(original, river::PayloadCodec::kPacked);
    const Record decoded = river::decode_record(frame);
    EXPECT_TRUE(decoded == original) << "n=" << n;
  }
}

TEST(WirePacked, PackedFrameIsSmaller) {
  const Record rec = quantized_audio_record(900, 7);
  const auto raw = river::encode_record(rec, river::PayloadCodec::kRaw);
  const auto packed = river::encode_record(rec, river::PayloadCodec::kPacked);
  EXPECT_LT(packed.size(), raw.size());
}

TEST(WirePacked, FullPrecisionFloatsStillRoundTrip) {
  // Values off the PCM16 grid (and NaN) must survive the packed path too.
  auto rec = rich_record();
  std::get<river::FloatVec>(rec.payload).push_back(
      std::numeric_limits<float>::quiet_NaN());
  const auto frame = river::encode_record(rec, river::PayloadCodec::kPacked);
  const Record decoded = river::decode_record(frame);
  const auto& a = std::get<river::FloatVec>(rec.payload);
  const auto& b = std::get<river::FloatVec>(decoded.payload);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::uint32_t ab = 0;
    std::uint32_t bb = 0;
    std::memcpy(&ab, &a[i], 4);
    std::memcpy(&bb, &b[i], 4);
    EXPECT_EQ(ab, bb) << "sample " << i;
  }
}

TEST(WirePacked, NonFloatPayloadsUnaffectedByCodec) {
  const Record empty;
  const auto bytes = Record::data_bytes(river::kSubtypeRaw, {0, 255, 128});
  const auto cplx = Record::data_complex(river::kSubtypeComplex, {{3.0F, 4.0F}});
  for (const Record* rec : {&empty, &bytes, &cplx}) {
    const auto raw = river::encode_record(*rec, river::PayloadCodec::kRaw);
    const auto packed = river::encode_record(*rec, river::PayloadCodec::kPacked);
    EXPECT_EQ(raw, packed);
  }
}

TEST(WirePacked, CorruptionDetectedByChecksum) {
  auto frame = river::encode_record(quantized_audio_record(900, 3),
                                    river::PayloadCodec::kPacked);
  for (const std::size_t at : {std::size_t{44}, frame.size() / 2,
                               frame.size() - 5}) {
    auto bad = frame;
    bad[at] ^= 0x01;
    EXPECT_THROW((void)river::decode_record(bad), river::WireError) << at;
  }
}

TEST(WirePacked, EveryTruncationRejected) {
  const auto frame = river::encode_record(quantized_audio_record(300, 5),
                                          river::PayloadCodec::kPacked);
  std::size_t consumed = 0;
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    EXPECT_THROW((void)river::decode_record(frame.data(), cut, consumed),
                 river::WireError)
        << "cut " << cut;
  }
}

TEST(WirePacked, InnerInconsistencyIsCorruptionNotTruncation) {
  // Grow the declared packed byte length so the stream is inconsistent
  // WITHIN bytes that are fully present: no amount of additional input can
  // fix that, so it must surface as structural corruption (WireError), never
  // as WireTruncated — a transport decoder treating it as "need more bytes"
  // would wait forever.
  auto rec = quantized_audio_record(256, 9);
  rec.attrs.clear();  // payload then starts right after the fixed header
  auto frame = river::encode_record(rec, river::PayloadCodec::kPacked);
  constexpr std::size_t kHeaderBytes = 40;  // through paylen, no attrs
  std::uint32_t packed_len = 0;
  std::memcpy(&packed_len, frame.data() + kHeaderBytes, 4);
  packed_len += 4;  // absorb the CRC field into the declared stream
  std::memcpy(frame.data() + kHeaderBytes, &packed_len, 4);

  std::size_t consumed = 0;
  try {
    (void)river::decode_record(frame.data(), frame.size(), consumed);
    FAIL() << "inconsistent packed frame decoded";
  } catch (const river::WireTruncated&) {
    FAIL() << "classified as truncation";
  } catch (const river::WireError&) {
    // expected
  }

  // And the incremental decoder must throw, not stall waiting for bytes.
  river::WireDecoder decoder;
  decoder.feed(frame.data(), frame.size());
  Record out;
  EXPECT_THROW((void)decoder.next(out), river::WireError);
}

// ---------------------------------------------------------------------------
// Hostile length fields: overflow boundaries and exhaustive bit flips
// ---------------------------------------------------------------------------

namespace {

template <typename T>
void put_le(std::vector<std::uint8_t>& out, T value) {
  std::uint8_t raw[sizeof(T)];
  std::memcpy(raw, &value, sizeof(T));
  out.insert(out.end(), raw, raw + sizeof(T));
}

/// Hand-rolled frame header (through paylen, zero attributes) for length
/// claims the real encoder refuses to produce. Trailing zero bytes stand in
/// for payload + CRC when the decode must throw before reaching either.
std::vector<std::uint8_t> hostile_frame(std::uint8_t pay_tag,
                                        std::uint64_t paylen,
                                        std::size_t trailing) {
  std::vector<std::uint8_t> out;
  put_le(out, river::kWireMagic);
  put_le(out, river::kWireVersion);
  put_le(out, static_cast<std::uint8_t>(RecordType::kData));
  put_le(out, pay_tag);
  put_le(out, std::uint32_t{0});  // subtype
  put_le(out, std::uint32_t{0});  // scope_depth
  put_le(out, std::uint32_t{0});  // scope_type
  put_le(out, std::uint64_t{0});  // sequence
  put_le(out, std::uint32_t{0});  // nattr
  put_le(out, paylen);
  out.resize(out.size() + trailing, 0);
  return out;
}

struct HostileClaim {
  std::uint8_t tag;
  std::uint64_t paylen;
};

}  // namespace

TEST(WireOverflow, PayloadClaimAboveCapIsCorruptionNotTruncation) {
  // A length no writer can produce is corruption, full stop: feeding more
  // bytes must never help (a transport decoder would stall forever), and no
  // allocation may happen on the way to the reject.
  for (const auto claim :
       {HostileClaim{1, river::kMaxWirePayloadBytes + 1},
        HostileClaim{2, river::kMaxWirePayloadBytes / sizeof(float) + 1},
        HostileClaim{3, river::kMaxWirePayloadBytes / 8 + 1},
        HostileClaim{river::kPayTagPackedFloats, std::uint64_t{1} << 62}}) {
    const auto frame = hostile_frame(claim.tag, claim.paylen, 16);
    std::size_t consumed = 0;
    try {
      (void)river::decode_record(frame.data(), frame.size(), consumed);
      FAIL() << "oversized claim decoded, tag " << int{claim.tag};
    } catch (const river::WireTruncated&) {
      FAIL() << "oversized claim classified as truncation, tag "
             << int{claim.tag};
    } catch (const river::WireError&) {
      // expected
    }
  }
}

TEST(WireOverflow, PayloadClaimAtCapIsMerelyTruncated) {
  // Exactly at the cap the claim is still legal, so a short buffer is a
  // fragment (more bytes could complete it), not corruption.
  for (const auto claim :
       {HostileClaim{1, river::kMaxWirePayloadBytes},
        HostileClaim{2, river::kMaxWirePayloadBytes / sizeof(float)},
        HostileClaim{3, river::kMaxWirePayloadBytes / 8}}) {
    const auto frame = hostile_frame(claim.tag, claim.paylen, 16);
    std::size_t consumed = 0;
    EXPECT_THROW(
        (void)river::decode_record(frame.data(), frame.size(), consumed),
        river::WireTruncated)
        << "tag " << int{claim.tag};
  }
}

TEST(WireOverflow, PackedCountDeclaring2p62ElementsIsRejected) {
  // Fuzz-found: before the payload cap, a 51-byte packed frame declaring
  // 2^62 elements wrapped the structural walk's 4*count arithmetic and
  // drove a ~2^64-byte resize. The triggering input is committed as
  // fuzz/corpus/wire_decode/packed_count_2p62_overflow.
  const auto frame =
      hostile_frame(river::kPayTagPackedFloats, std::uint64_t{1} << 62, 11);
  std::size_t consumed = 0;
  EXPECT_THROW(
      (void)river::decode_record(frame.data(), frame.size(), consumed),
      river::WireError);
}

TEST(WireOverflow, PackedCountInconsistentWithStreamIsCorruption) {
  // A count that passes the absolute cap but that no stream of the declared
  // length can expand to (128 elements per byte is the codec's hard maximum)
  // must be rejected before the scratch buffer is sized from it.
  auto frame =
      hostile_frame(river::kPayTagPackedFloats, std::uint64_t{1} << 28, 0);
  put_le(frame, std::uint32_t{3});      // declared packed stream length
  frame.resize(frame.size() + 3 + 4, 0);  // stream + CRC
  std::size_t consumed = 0;
  try {
    (void)river::decode_record(frame.data(), frame.size(), consumed);
    FAIL() << "inconsistent packed count decoded";
  } catch (const river::WireTruncated&) {
    FAIL() << "inconsistent packed count classified as truncation";
  } catch (const river::WireError&) {
    // expected
  }
}

TEST(Wire, SingleBitFlipAnywhereIsRejectedBothCodecs) {
  // CRC32 detects every single-bit error, and the magic/CRC fields outside
  // its coverage are checked directly — so no flip anywhere in a frame may
  // decode, crash, or trigger an attacker-sized allocation.
  for (const auto codec :
       {river::PayloadCodec::kRaw, river::PayloadCodec::kPacked}) {
    const auto frame = river::encode_record(quantized_audio_record(300, 7),
                                            codec);
    testsupport::sweep_bit_flips(
        frame, [&](const std::vector<std::uint8_t>& damaged, std::size_t at) {
          std::size_t consumed = 0;
          EXPECT_THROW((void)river::decode_record(damaged.data(),
                                                  damaged.size(), consumed),
                       river::WireError)
              << "codec " << static_cast<int>(codec) << " flip at byte "
              << at;
        });
  }
}

// ---------------------------------------------------------------------------
// RecordView (allocation-free decode)
// ---------------------------------------------------------------------------

TEST(WireView, MatchesDecodeRecordForEveryShape) {
  std::vector<Record> cases;
  cases.push_back(rich_record());
  cases.push_back(Record{});
  cases.push_back(Record::data_bytes(river::kSubtypeRaw, {1, 2, 3}));
  cases.push_back(Record::data_complex(river::kSubtypeComplex, {{1.0F, -2.0F}}));
  cases.push_back(quantized_audio_record(900, 21));
  for (const auto& rec : cases) {
    for (const auto codec :
         {river::PayloadCodec::kRaw, river::PayloadCodec::kPacked}) {
      const auto frame = river::encode_record(rec, codec);
      std::size_t consumed = 0;
      river::WireScratch scratch;
      const auto view =
          river::decode_record_view(frame.data(), frame.size(), consumed,
                                    scratch);
      EXPECT_EQ(consumed, frame.size());
      EXPECT_TRUE(view.materialize() == rec);
    }
  }
}

TEST(WireView, LazyAttributeAccess) {
  const auto frame = river::encode_record(rich_record());
  std::size_t consumed = 0;
  river::WireScratch scratch;
  const auto view =
      river::decode_record_view(frame.data(), frame.size(), consumed, scratch);
  EXPECT_TRUE(view.has_attr("rate"));
  EXPECT_TRUE(view.has_attr("station"));
  EXPECT_FALSE(view.has_attr("missing"));
  EXPECT_EQ(view.attr_double("rate", 0.0), 21600.0);
  EXPECT_EQ(view.attr_int("clip", 0), -9);
  // Type-mismatched and absent keys fall back, like Record's getters.
  EXPECT_EQ(view.attr_int("rate", 77), 77);
  EXPECT_EQ(view.attr_double("missing", 1.5), 1.5);
}

TEST(WireView, FloatPayloadBitIdenticalThroughScratchReuse) {
  river::WireScratch scratch;
  for (unsigned seed = 0; seed < 8; ++seed) {
    const Record rec = quantized_audio_record(700 + seed, seed);
    const auto frame =
        river::encode_record(rec, seed % 2 == 0 ? river::PayloadCodec::kPacked
                                                : river::PayloadCodec::kRaw);
    std::size_t consumed = 0;
    const auto view =
        river::decode_record_view(frame.data(), frame.size(), consumed,
                                  scratch);
    const auto& expect = std::get<river::FloatVec>(rec.payload);
    ASSERT_EQ(view.floats.size(), expect.size());
    EXPECT_EQ(std::memcmp(view.floats.data(), expect.data(),
                          4 * expect.size()),
              0);
  }
}

TEST(WireDecoder, NextViewMatchesNextUnderFragmentation) {
  std::vector<Record> originals;
  std::vector<std::uint8_t> stream;
  for (int i = 0; i < 40; ++i) {
    auto rec = quantized_audio_record(200 + static_cast<std::size_t>(i),
                                      static_cast<unsigned>(i));
    rec.sequence = static_cast<std::uint64_t>(i);
    const auto frame = river::encode_record(
        rec, i % 2 == 0 ? river::PayloadCodec::kPacked
                        : river::PayloadCodec::kRaw);
    stream.insert(stream.end(), frame.begin(), frame.end());
    originals.push_back(std::move(rec));
  }
  river::WireDecoder decoder;
  river::RecordView view;
  std::size_t i = 0;
  for (std::size_t off = 0; off < stream.size(); off += 777) {
    const std::size_t len = std::min<std::size_t>(777, stream.size() - off);
    decoder.feed(stream.data() + off, len);
    while (decoder.next_view(view)) {
      ASSERT_LT(i, originals.size());
      EXPECT_TRUE(view.materialize() == originals[i]) << "record " << i;
      ++i;
    }
  }
  EXPECT_EQ(i, originals.size());
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(WireDecoder, BurstDecodingStaysLinear) {
  // The deterministic pin for the old O(n^2) failure mode: feeding a large
  // burst then draining must never memmove more bytes than were consumed
  // (amortized O(1) compaction per byte). The counter is exact, so this
  // cannot flake the way a timing assertion would.
  const auto frame = river::encode_record(rich_record());
  constexpr std::size_t kRecords = 5000;
  std::vector<std::uint8_t> stream;
  stream.reserve(kRecords * frame.size());
  for (std::size_t i = 0; i < kRecords; ++i) {
    stream.insert(stream.end(), frame.begin(), frame.end());
  }

  // One giant burst, fully drained: a full drain resets for free.
  {
    river::WireDecoder decoder;
    decoder.feed(stream.data(), stream.size());
    Record rec;
    std::size_t n = 0;
    while (decoder.next(rec)) ++n;
    EXPECT_EQ(n, kRecords);
    EXPECT_EQ(decoder.compacted_bytes(), 0u);
  }

  // Interleaved feed/drain with a partial record always pending: total
  // memmoved bytes stay below total stream bytes.
  {
    river::WireDecoder decoder;
    Record rec;
    std::size_t n = 0;
    const std::size_t chunk = frame.size() + frame.size() / 2;
    for (std::size_t off = 0; off < stream.size(); off += chunk) {
      const std::size_t len = std::min(chunk, stream.size() - off);
      decoder.feed(stream.data() + off, len);
      while (decoder.next(rec)) ++n;
    }
    EXPECT_EQ(n, kRecords);
    EXPECT_LE(decoder.compacted_bytes(), stream.size());
  }
}
