// Wire format: round-trips for every payload/attribute shape, checksum
// detection, truncation handling, incremental decoding under arbitrary
// fragmentation.
#include <gtest/gtest.h>

#include "river/wire.hpp"

namespace river = dynriver::river;
using river::Record;
using river::RecordType;

namespace {
Record rich_record() {
  auto rec = Record::data(river::kSubtypeSpectrum, {1.5F, -2.25F, 0.0F, 1e-7F});
  rec.scope_depth = 3;
  rec.scope_type = river::kScopeEnsemble;
  rec.sequence = 0xDEADBEEFCAFEull;
  rec.set_attr("rate", 21600.0);
  rec.set_attr("clip", std::int64_t{-9});
  rec.set_attr("station", std::string("kbs"));
  return rec;
}
}  // namespace

TEST(Wire, RoundTripRichRecord) {
  const Record original = rich_record();
  const auto frame = river::encode_record(original);
  const Record decoded = river::decode_record(frame);
  EXPECT_TRUE(decoded == original);
}

TEST(Wire, RoundTripAllRecordTypes) {
  for (const auto type : {RecordType::kData, RecordType::kOpenScope,
                          RecordType::kCloseScope, RecordType::kBadCloseScope}) {
    Record rec;
    rec.type = type;
    rec.scope_type = river::kScopeClip;
    const Record decoded = river::decode_record(river::encode_record(rec));
    EXPECT_TRUE(decoded == rec);
  }
}

TEST(Wire, RoundTripAllPayloadKinds) {
  Record empty;
  EXPECT_TRUE(river::decode_record(river::encode_record(empty)) == empty);

  const auto bytes = Record::data_bytes(river::kSubtypeRaw, {0, 255, 128});
  EXPECT_TRUE(river::decode_record(river::encode_record(bytes)) == bytes);

  const auto floats = Record::data(river::kSubtypeAudio, {1.0F, -1.0F});
  EXPECT_TRUE(river::decode_record(river::encode_record(floats)) == floats);

  const auto cplx =
      Record::data_complex(river::kSubtypeComplex, {{3.0F, 4.0F}});
  EXPECT_TRUE(river::decode_record(river::encode_record(cplx)) == cplx);
}

TEST(Wire, RoundTripLargePayload) {
  river::FloatVec big(100000);
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = static_cast<float>(i);
  const auto rec = Record::data(river::kSubtypeAudio, std::move(big));
  EXPECT_TRUE(river::decode_record(river::encode_record(rec)) == rec);
}

TEST(Wire, BadMagicRejected) {
  auto frame = river::encode_record(rich_record());
  frame[0] ^= 0xFF;
  EXPECT_THROW((void)river::decode_record(frame), river::WireError);
}

TEST(Wire, CorruptionDetectedByChecksum) {
  auto frame = river::encode_record(rich_record());
  frame[frame.size() / 2] ^= 0x01;  // flip one payload/attr bit
  EXPECT_THROW((void)river::decode_record(frame), river::WireError);
}

TEST(Wire, TruncatedFrameRejected) {
  const auto frame = river::encode_record(rich_record());
  for (const std::size_t cut : {std::size_t{1}, frame.size() / 2, frame.size() - 1}) {
    std::size_t consumed = 0;
    EXPECT_THROW((void)river::decode_record(frame.data(), cut, consumed),
                 river::WireError);
  }
}

TEST(Wire, TrailingBytesRejected) {
  auto frame = river::encode_record(rich_record());
  frame.push_back(0);
  EXPECT_THROW((void)river::decode_record(frame), river::WireError);
}

TEST(Wire, Crc32KnownVector) {
  // CRC-32 of "123456789" is 0xCBF43926 (IEEE 802.3).
  const std::uint8_t data[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(river::crc32(data, sizeof(data)), 0xCBF43926u);
}

// Incremental decoder must produce identical records regardless of how the
// byte stream is fragmented.
class WireDecoderFragmentation : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WireDecoderFragmentation, ReassemblesChunkedStream) {
  const std::size_t chunk = GetParam();
  std::vector<Record> originals;
  std::vector<std::uint8_t> stream;
  for (int i = 0; i < 25; ++i) {
    auto rec = rich_record();
    rec.sequence = static_cast<std::uint64_t>(i);
    const auto frame = river::encode_record(rec);
    stream.insert(stream.end(), frame.begin(), frame.end());
    originals.push_back(std::move(rec));
  }

  river::WireDecoder decoder;
  std::vector<Record> decoded;
  Record rec;
  for (std::size_t off = 0; off < stream.size(); off += chunk) {
    const std::size_t len = std::min(chunk, stream.size() - off);
    decoder.feed(stream.data() + off, len);
    while (decoder.next(rec)) decoded.push_back(rec);
  }
  ASSERT_EQ(decoded.size(), originals.size());
  for (std::size_t i = 0; i < originals.size(); ++i) {
    EXPECT_TRUE(decoded[i] == originals[i]) << "record " << i;
  }
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(ChunkSizes, WireDecoderFragmentation,
                         ::testing::Values(1, 3, 7, 16, 64, 333, 4096, 1 << 20));

TEST(WireDecoder, SurfacesCorruptionMidStream) {
  auto frame = river::encode_record(rich_record());
  frame[10] ^= 0x40;  // corrupt after the magic
  river::WireDecoder decoder;
  decoder.feed(frame.data(), frame.size());
  Record rec;
  EXPECT_THROW((void)decoder.next(rec), river::WireError);
}
