// Synthetic substrate: determinism, spectral placement of songs (in the
// pipeline's cutout band), noise spectral placement (below the band), ground
// truth integrity, and clip sizing against the paper's ~1.26 MB figure.
#include <gtest/gtest.h>

#include <cmath>

#include "dsp/fft.hpp"
#include "dsp/spectrogram.hpp"
#include "synth/noise.hpp"
#include "synth/species.hpp"
#include "synth/station.hpp"

namespace synth = dynriver::synth;
namespace dsp = dynriver::dsp;
using dynriver::Rng;

namespace {
constexpr double kRate = 21600.0;

/// Fraction of spectral energy inside [lo_hz, hi_hz).
double band_energy_fraction(const std::vector<float>& samples, double lo_hz,
                            double hi_hz) {
  dsp::SpectrogramParams params;
  params.frame_size = 900;
  params.hop = 450;
  params.sample_rate = kRate;
  const auto spec = dsp::stft(samples, params);
  double in_band = 0.0;
  double total = 1e-12;
  for (const auto& frame : spec.frames) {
    for (std::size_t k = 1; k < frame.size(); ++k) {  // skip DC
      const double f = spec.bin_freq(k);
      const double e = static_cast<double>(frame[k]) * frame[k];
      total += e;
      if (f >= lo_hz && f < hi_hz) in_band += e;
    }
  }
  return in_band / total;
}
}  // namespace

TEST(Syllable, RenderedLengthMatchesDuration) {
  Rng rng(1);
  synth::SyllableSpec spec;
  spec.duration_s = 0.25;
  const auto samples = synth::render_syllable(spec, kRate, rng);
  EXPECT_EQ(samples.size(), static_cast<std::size_t>(0.25 * kRate));
}

TEST(Syllable, EnvelopeTapersEdges) {
  Rng rng(2);
  synth::SyllableSpec spec;
  spec.duration_s = 0.2;
  spec.attack_s = 0.02;
  spec.release_s = 0.02;
  const auto samples = synth::render_syllable(spec, kRate, rng);
  EXPECT_NEAR(samples.front(), 0.0F, 1e-5);
  EXPECT_NEAR(samples.back(), 0.0F, 1e-3);
}

TEST(Syllable, AmplitudeBounded) {
  Rng rng(3);
  synth::SyllableSpec spec;
  spec.amplitude = 1.0;
  spec.harmonics = 4;
  spec.noise_mix = 0.5;
  spec.duration_s = 0.3;
  const auto samples = synth::render_syllable(spec, kRate, rng);
  for (const float v : samples) EXPECT_LE(std::abs(v), 2.0F);
}

TEST(Syllable, ToneEnergyAtRequestedFrequency) {
  Rng rng(4);
  synth::SyllableSpec spec;
  spec.f_start_hz = 3000;
  spec.f_end_hz = 3000;
  spec.duration_s = 0.3;
  const auto samples = synth::render_syllable(spec, kRate, rng);
  EXPECT_GT(band_energy_fraction(samples, 2800, 3200), 0.9);
}

TEST(SpeciesCatalog, HasTenSpeciesWithPaperCodes) {
  const auto& cat = synth::species_catalog();
  ASSERT_EQ(cat.size(), synth::kNumSpecies);
  const char* codes[] = {"AMGO", "BCCH", "BLJA", "DOWO", "HOFI",
                         "MODO", "NOCA", "RWBL", "TUTI", "WBNU"};
  for (std::size_t i = 0; i < synth::kNumSpecies; ++i) {
    EXPECT_EQ(cat[i].code, codes[i]);
    EXPECT_FALSE(cat[i].elements.empty());
  }
}

TEST(SpeciesCatalog, DurationsTrackTable1PatternsPerEnsemble) {
  // patterns/ensembles in Table 1 implies relative song lengths: MODO is the
  // longest (14.1 patterns/ensemble), AMGO/DOWO among the shortest (~5.4).
  const double modo =
      synth::nominal_song_duration(synth::species(synth::SpeciesId::kMODO));
  const double amgo =
      synth::nominal_song_duration(synth::species(synth::SpeciesId::kAMGO));
  const double dowo =
      synth::nominal_song_duration(synth::species(synth::SpeciesId::kDOWO));
  EXPECT_GT(modo, 2.0 * amgo);
  EXPECT_GT(modo, 2.0 * dowo);
  for (std::size_t i = 0; i < synth::kNumSpecies; ++i) {
    const double d = synth::nominal_song_duration(synth::species(i));
    EXPECT_GT(d, 0.3) << synth::species(i).code;
    EXPECT_LT(d, 3.0) << synth::species(i).code;
  }
}

TEST(SpeciesRender, DeterministicGivenSeed) {
  Rng rng_a(99);
  Rng rng_b(99);
  const auto a =
      synth::render_song(synth::species(synth::SpeciesId::kNOCA), kRate, rng_a);
  const auto b =
      synth::render_song(synth::species(synth::SpeciesId::kNOCA), kRate, rng_b);
  EXPECT_EQ(a, b);
}

TEST(SpeciesRender, RenditionsVary) {
  Rng rng(100);
  const auto a =
      synth::render_song(synth::species(synth::SpeciesId::kBCCH), kRate, rng);
  const auto b =
      synth::render_song(synth::species(synth::SpeciesId::kBCCH), kRate, rng);
  EXPECT_NE(a, b);  // jitter must produce different renditions
}

class SpeciesBandEnergy : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SpeciesBandEnergy, SongEnergyInsideCutoutBand) {
  // Every species must put most of its energy in the pipeline's analysis
  // band [1.2, 9.6) kHz, or classification could not possibly work.
  Rng rng(GetParam() * 31 + 5);
  const auto song = synth::render_song(synth::species(GetParam()), kRate, rng);
  EXPECT_GT(band_energy_fraction(song, 1200, 9600), 0.55)
      << synth::species(GetParam()).code;
}

INSTANTIATE_TEST_SUITE_P(AllSpecies, SpeciesBandEnergy,
                         ::testing::Range<std::size_t>(0, synth::kNumSpecies));

TEST(NoiseModels, WindEnergyIsBelowTheBand) {
  auto samples = synth::render_background(Rng(5), kRate, 1 << 16,
                                          {.wind = 1.0, .human = 0.0,
                                           .ambient = 0.0});
  EXPECT_LT(band_energy_fraction(samples, 1200, 9600), 0.1);
}

TEST(NoiseModels, HumanActivityEnergyIsBelowTheBand) {
  auto samples = synth::render_background(Rng(6), kRate, 1 << 16,
                                          {.wind = 0.0, .human = 1.0,
                                           .ambient = 0.0});
  EXPECT_LT(band_energy_fraction(samples, 1200, 9600), 0.15);
}

TEST(NoiseModels, PinkNoiseHasMoreLowThanHighEnergy) {
  synth::PinkNoise pink{Rng(7)};
  std::vector<float> samples(1 << 15);
  for (auto& v : samples) v = pink.step();
  const double low = band_energy_fraction(samples, 0, 2000);
  const double high = band_energy_fraction(samples, 8000, 10800);
  EXPECT_GT(low, high * 2.0);
}

TEST(SensorStation, ClipSizeMatchesPaper) {
  synth::StationParams params;
  synth::SensorStation station(params, 11);
  const auto rec = station.record_silence();
  // 30 s x 21600 Hz x 2 bytes = 1.296 MB, the paper's "approximately 1.26MB".
  const double mb = static_cast<double>(rec.clip.samples.size()) * 2.0 / 1e6;
  EXPECT_NEAR(mb, 1.296, 1e-6);
  EXPECT_NEAR(rec.clip.duration_seconds(), 30.0, 1e-9);
}

TEST(SensorStation, GroundTruthMatchesRequestedSingers) {
  synth::StationParams params;
  synth::SensorStation station(params, 12);
  const std::vector<synth::SpeciesId> singers = {
      synth::SpeciesId::kNOCA, synth::SpeciesId::kMODO, synth::SpeciesId::kNOCA};
  const auto rec = station.record_clip(singers);
  ASSERT_EQ(rec.truth.size(), 3u);
  std::size_t noca = 0, modo = 0;
  for (const auto& t : rec.truth) {
    if (t.species == synth::SpeciesId::kNOCA) ++noca;
    if (t.species == synth::SpeciesId::kMODO) ++modo;
    EXPECT_GT(t.length, 0u);
    EXPECT_LE(t.end_sample(), rec.clip.samples.size());
  }
  EXPECT_EQ(noca, 2u);
  EXPECT_EQ(modo, 1u);
}

TEST(SensorStation, EventsAreDisjointAndOrdered) {
  synth::StationParams params;
  synth::SensorStation station(params, 13);
  const std::vector<synth::SpeciesId> singers(
      4, synth::SpeciesId::kTUTI);
  const auto rec = station.record_clip(singers);
  ASSERT_EQ(rec.truth.size(), 4u);
  for (std::size_t i = 1; i < rec.truth.size(); ++i) {
    EXPECT_GE(rec.truth[i].start_sample, rec.truth[i - 1].end_sample());
  }
}

TEST(SensorStation, SongsRaiseInBandEnergy) {
  synth::StationParams params;
  synth::SensorStation station(params, 14);
  const auto quiet = station.record_silence();
  const auto singing = station.record_clip(
      {synth::SpeciesId::kNOCA, synth::SpeciesId::kNOCA});
  const double quiet_band = band_energy_fraction(quiet.clip.samples, 1200, 9600);
  const double singing_band =
      band_energy_fraction(singing.clip.samples, 1200, 9600);
  EXPECT_GT(singing_band, quiet_band * 2.0);
}

TEST(SensorStation, ClipIdsIncrement) {
  synth::StationParams params;
  synth::SensorStation station(params, 15);
  EXPECT_EQ(station.record_silence().clip_id, 0u);
  EXPECT_EQ(station.record_silence().clip_id, 1u);
  EXPECT_EQ(station.clips_recorded(), 2u);
}

TEST(IntervalOverlap, Basics) {
  EXPECT_TRUE(synth::intervals_overlap(0, 100, 50, 150, 0.5));
  EXPECT_FALSE(synth::intervals_overlap(0, 100, 100, 200, 0.01));
  EXPECT_FALSE(synth::intervals_overlap(0, 100, 95, 300, 0.5));
  EXPECT_TRUE(synth::intervals_overlap(0, 1000, 400, 500, 1.0));  // containment
}
