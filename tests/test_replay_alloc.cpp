// Steady-state replay must be allocation-free per frame: the RecordView
// decode path borrows the cursor/window buffers and the per-source scratch,
// so once every reusable buffer has grown to its high-water mark, reading
// more audio performs zero heap allocations per record. Pinned by replacing
// global operator new with a counting shim and measuring a warm window.
//
// The budget is deliberately not exactly zero: per-*segment* costs (an
// ifstream, a prefetch window handoff) are allowed, per-*frame* costs are
// not — hence the < 0.05 allocations/frame ceiling.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <span>
#include <vector>

#include "river/record.hpp"
#include "river/segment_store.hpp"
#include "test_support.hpp"

namespace {

std::atomic<std::size_t> g_allocations{0};

}  // namespace

// Replacement global allocation functions: count, then defer to malloc/free.
// (Sized and array deletes forward to the plain one; over-aligned forms are
// left to the defaults — nothing on the replay path over-aligns.)
void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size > 0 ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace river = dynriver::river;
namespace testsupport = dynriver::testsupport;

namespace {

float quantize_pcm16(float v) {
  const float c = v < -1.0F ? -1.0F : (v > 1.0F ? 1.0F : v);
  return static_cast<float>(std::lround(c * 32767.0F)) / 32768.0F;
}

class ReplayAllocTest : public testsupport::TempDirTest {};

}  // namespace

TEST_F(ReplayAllocTest, SteadyStateReplayIsAllocationFreePerFrame) {
  // 2000 records x 900 samples in one sealed segment, packed: decode work
  // (bit-unpack into scratch, copy into pending) all runs through reused
  // buffers.
  const auto dir = temp_file("store");
  constexpr std::size_t kRecordSamples = 900;
  constexpr std::size_t kRecords = 2000;
  {
    std::vector<float> xs(kRecords * kRecordSamples);
    for (std::size_t i = 0; i < xs.size(); ++i) {
      xs[i] = quantize_pcm16(
          0.4F * std::sin(static_cast<float>(i % 4096) * 0.013F));
    }
    river::SegmentStoreOptions options;
    options.pack_payloads = true;
    river::SegmentedRecordLog log(dir, options);
    river::AudioSegmentArchiver archiver(log, 21600.0, kRecordSamples);
    archiver.push(xs);
    archiver.finish();
    log.close();
  }

  for (const bool prefetch : {true, false}) {
    river::ReplayOptions options;
    options.prefetch = prefetch;
    river::SegmentStoreSource source(dir, options);
    std::vector<float> buf(256);

    // Warm-up: 300 records' worth grows every reusable buffer (and, on the
    // prefetch path, lets the background loader finish its window).
    std::size_t warmed = 0;
    while (warmed < 300 * kRecordSamples) {
      const std::size_t n = source.read(buf);
      ASSERT_GT(n, 0U);
      warmed += n;
    }

    // Measured window: 1000 more records.
    constexpr std::size_t kMeasuredRecords = 1000;
    const std::size_t before = g_allocations.load(std::memory_order_relaxed);
    std::size_t read = 0;
    while (read < kMeasuredRecords * kRecordSamples) {
      const std::size_t n = source.read(buf);
      ASSERT_GT(n, 0U);
      read += n;
    }
    const std::size_t during =
        g_allocations.load(std::memory_order_relaxed) - before;

    // < 0.05 allocations per frame: per-frame heap traffic is zero; only
    // incidental per-segment costs may land inside the window.
    EXPECT_LT(during, kMeasuredRecords / 20)
        << (prefetch ? "prefetched" : "synchronous") << " replay allocated "
        << during << " times across " << kMeasuredRecords << " records";

    // Drain the rest so the source shuts down cleanly inside the test body.
    while (source.read(buf) > 0) {
    }
    EXPECT_TRUE(source.clean());
  }
}
