// Pipeline composition: chaining, flush ordering, utility operators,
// record logs.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iterator>

#include "river/ops_util.hpp"
#include "river/pipeline.hpp"
#include "river/record_log.hpp"
#include "test_support.hpp"

using RecordLog = dynriver::testsupport::TempDirTest;

namespace river = dynriver::river;
using river::Record;
using river::RecordType;

namespace {
/// Doubles every float payload value.
class DoubleOp final : public river::Operator {
 public:
  void process(Record rec, river::Emitter& out) override {
    if (rec.is_float()) {
      for (auto& v : rec.floats()) v *= 2.0F;
    }
    out.emit(std::move(rec));
  }
  [[nodiscard]] std::string_view name() const override { return "double"; }
};

/// Buffers everything, emits on flush (tests flush cascading).
class BufferAllOp final : public river::Operator {
 public:
  void process(Record rec, river::Emitter&) override {
    buffered_.push_back(std::move(rec));
  }
  void flush(river::Emitter& out) override {
    for (auto& rec : buffered_) out.emit(std::move(rec));
    buffered_.clear();
  }
  [[nodiscard]] std::string_view name() const override { return "buffer_all"; }

 private:
  std::vector<Record> buffered_;
};
}  // namespace

TEST(Pipeline, EmptyPipelinePassesThrough) {
  river::Pipeline p;
  auto out = river::run_pipeline(p, {Record::data(0, {1.0F})});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_FLOAT_EQ(out[0].floats()[0], 1.0F);
}

TEST(Pipeline, OperatorsChainInOrder) {
  river::Pipeline p;
  p.emplace<DoubleOp>().emplace<DoubleOp>();
  auto out = river::run_pipeline(p, {Record::data(0, {3.0F})});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_FLOAT_EQ(out[0].floats()[0], 12.0F);  // x2 twice
}

TEST(Pipeline, FlushedRecordsTraverseDownstream) {
  river::Pipeline p;
  p.emplace<BufferAllOp>().emplace<DoubleOp>();
  auto out = river::run_pipeline(p, {Record::data(0, {5.0F})});
  ASSERT_EQ(out.size(), 1u);
  // The buffered record must still pass the downstream DoubleOp on flush.
  EXPECT_FLOAT_EQ(out[0].floats()[0], 10.0F);
}

TEST(Pipeline, TopologyReportsNames) {
  river::Pipeline p;
  p.emplace<DoubleOp>().emplace<river::IdentityOp>();
  const auto names = p.topology();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "double");
  EXPECT_EQ(names[1], "identity");
}

TEST(Pipeline, LambdaOperator) {
  river::Pipeline p;
  p.emplace<river::LambdaOperator>("drop_data", [](Record rec, river::Emitter& out) {
    if (rec.type != RecordType::kData) out.emit(std::move(rec));
  });
  auto out = river::run_pipeline(
      p, {Record::open_scope(river::kScopeClip, 0), Record::data(0, {1.0F}),
          Record::close_scope(river::kScopeClip, 0)});
  EXPECT_EQ(out.size(), 2u);
}

TEST(CounterOp, CountsDataAndBytes) {
  river::Pipeline p;
  auto counter = std::make_unique<river::CounterOp>();
  auto* raw = counter.get();
  p.add(std::move(counter));
  (void)river::run_pipeline(
      p, {Record::open_scope(river::kScopeClip, 0),
          Record::data(river::kSubtypeAudio, {1.0F, 2.0F, 3.0F}),
          Record::data(river::kSubtypeAudio, {4.0F}),
          Record::close_scope(river::kScopeClip, 0)});
  EXPECT_EQ(raw->records(), 4u);
  EXPECT_EQ(raw->data_records(), 2u);
  EXPECT_EQ(raw->payload_bytes(), 16u);
}

TEST(SubtypeFilterOp, DropsOtherSubtypes) {
  river::Pipeline p;
  p.emplace<river::SubtypeFilterOp>(river::kSubtypeAudio);
  auto out = river::run_pipeline(
      p, {Record::open_scope(river::kScopeClip, 0),
          Record::data(river::kSubtypeAudio, {1.0F}),
          Record::data(river::kSubtypeSpectrum, {2.0F}),
          Record::close_scope(river::kScopeClip, 0)});
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[1].subtype, river::kSubtypeAudio);
}

TEST(ScopeSelectOp, KeepsOnlyMatchingScopes) {
  river::Pipeline p;
  p.emplace<river::ScopeSelectOp>(river::kScopeEnsemble);
  auto out = river::run_pipeline(
      p, {Record::open_scope(river::kScopeClip, 0),
          Record::data(river::kSubtypeAudio, {9.0F}),  // outside: dropped
          Record::open_scope(river::kScopeEnsemble, 1),
          Record::data(river::kSubtypeAudio, {1.0F}),  // inside: kept
          Record::close_scope(river::kScopeEnsemble, 1),
          Record::data(river::kSubtypeAudio, {9.0F}),  // outside again
          Record::close_scope(river::kScopeClip, 0)});
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].type, RecordType::kOpenScope);
  EXPECT_FLOAT_EQ(out[1].floats()[0], 1.0F);
  EXPECT_EQ(out[2].type, RecordType::kCloseScope);
}

TEST(AttrStampOp, StampsEveryRecord) {
  river::Pipeline p;
  p.emplace<river::AttrStampOp>("station", std::string("kbs-1"));
  auto out = river::run_pipeline(p, {Record::data(0, {1.0F})});
  EXPECT_EQ(out[0].attr_string("station", ""), "kbs-1");
}

TEST_F(RecordLog, WriteReadRoundTrip) {
  const auto path = temp_file("log.drl");
  {
    river::RecordLogWriter writer(path);
    for (int i = 0; i < 50; ++i) {
      auto rec = Record::data(river::kSubtypeAudio, {static_cast<float>(i)});
      rec.sequence = static_cast<std::uint64_t>(i);
      writer.write(rec);
    }
    EXPECT_EQ(writer.records_written(), 50u);
  }
  river::RecordLogReader reader(path);
  Record rec;
  int count = 0;
  while (reader.next(rec)) {
    EXPECT_EQ(rec.sequence, static_cast<std::uint64_t>(count));
    ++count;
  }
  EXPECT_EQ(count, 50);
}

TEST_F(RecordLog, ReadoutOpPersistsWhileForwarding) {
  const auto path = temp_file("readout.drl");
  {
    river::Pipeline p;
    p.emplace<river::ReadoutOp>(path);
    auto out = river::run_pipeline(
        p, {Record::data(0, {1.0F}), Record::data(0, {2.0F})});
    EXPECT_EQ(out.size(), 2u);  // forwarded
  }
  river::VectorEmitter replay;
  EXPECT_EQ(river::replay_log(path, replay), 2u);  // persisted
  EXPECT_EQ(replay.records.size(), 2u);
}

TEST_F(RecordLog, PartialTrailingFrameEndsCleanlyWithTornDiagnosis) {
  // Regression: a torn tail is the exact state kRecover tolerates — a
  // writer died (or is still) mid-frame. The reader used to throw here,
  // making tailing a live log spuriously fail; now it ends the complete
  // prefix cleanly and reports the torn tail through torn()/lost_bytes().
  const auto path = temp_file("trunc.drl");
  {
    river::RecordLogWriter writer(path);
    writer.write(Record::data(0, {1.0F}));
    writer.write(Record::data(0, {2.0F}));
  }
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 3);
  river::RecordLogReader reader(path);
  Record rec;
  ASSERT_TRUE(reader.next(rec));  // first frame is intact
  EXPECT_FALSE(reader.next(rec));
  EXPECT_TRUE(reader.torn());
  EXPECT_EQ(reader.lost_bytes(), size / 2 - 3);
  EXPECT_EQ(reader.records_read(), 1u);
  EXPECT_FALSE(reader.next(rec));  // stable after the end
}

TEST_F(RecordLog, MidLogCorruptionStillThrows) {
  const auto path = temp_file("corrupt.drl");
  {
    river::RecordLogWriter writer(path);
    writer.write(Record::data(0, {1.0F}));
    writer.write(Record::data(0, {2.0F}));
  }
  // Damage the first frame's payload: its checksum no longer matches, which
  // is structural corruption, not a torn tail.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(40);
    const char corrupt = '\x5A';
    f.write(&corrupt, 1);
  }
  river::RecordLogReader reader(path);
  Record rec;
  EXPECT_THROW((void)reader.next(rec), river::WireError);
  EXPECT_FALSE(reader.torn());
}

TEST_F(RecordLog, TruncateAtEveryByteKeepsExactlyTheValidPrefix) {
  // Property sweep: for every possible truncation point, the reader yields
  // exactly the frames that fit, reports torn() iff the cut is mid-frame,
  // and kRecover truncates to the same boundary.
  const auto path = temp_file("sweep.drl");
  std::vector<std::uint64_t> frame_ends;  // cumulative byte offsets
  {
    river::RecordLogWriter writer(path);
    std::uint64_t end = 0;
    for (std::uint64_t i = 0; i < 6; ++i) {
      auto rec = Record::data(river::kSubtypeAudio,
                              river::FloatVec(3 + 7 * i, 0.25F));
      rec.sequence = i;
      rec.set_attr(river::kAttrStartSample, static_cast<std::int64_t>(i));
      end += river::encode_record(rec).size();
      frame_ends.push_back(end);
      writer.write(rec);
    }
    writer.close();
  }
  std::vector<char> pristine;
  {
    std::ifstream in(path, std::ios::binary);
    pristine.assign(std::istreambuf_iterator<char>(in),
                    std::istreambuf_iterator<char>());
  }
  ASSERT_EQ(pristine.size(), frame_ends.back());

  for (std::size_t cut = 0; cut < pristine.size(); ++cut) {
    const auto cut_path = temp_file("sweep_cut.drl");
    {
      std::ofstream out(cut_path, std::ios::binary | std::ios::trunc);
      out.write(pristine.data(), static_cast<std::streamsize>(cut));
    }
    const std::size_t want_frames = static_cast<std::size_t>(
        std::count_if(frame_ends.begin(), frame_ends.end(),
                      [&](std::uint64_t e) { return e <= cut; }));
    const bool on_boundary =
        cut == 0 || std::find(frame_ends.begin(), frame_ends.end(), cut) !=
                        frame_ends.end();

    // Invariant 1: the reader yields the complete prefix, then a clean end.
    river::RecordLogReader reader(cut_path);
    Record rec;
    std::size_t got = 0;
    while (reader.next(rec)) {
      EXPECT_EQ(rec.sequence, got) << "cut=" << cut;
      ++got;
    }
    EXPECT_EQ(got, want_frames) << "cut=" << cut;
    EXPECT_EQ(reader.torn(), !on_boundary) << "cut=" << cut;

    // Invariant 2: kRecover keeps exactly that prefix.
    river::RecordLogWriter writer(cut_path, river::LogOpenMode::kRecover);
    EXPECT_EQ(writer.recovered_records(), want_frames) << "cut=" << cut;
    writer.close();
    const auto want_bytes = want_frames == 0 ? 0 : frame_ends[want_frames - 1];
    EXPECT_EQ(std::filesystem::file_size(cut_path), want_bytes)
        << "cut=" << cut;
  }
}

TEST_F(RecordLog, SyncMakesFramesVisibleWhileWriterStaysOpen) {
  const auto path = temp_file("sync.drl");
  river::RecordLogWriter writer(path);
  for (std::uint64_t i = 0; i < 3; ++i) {
    auto rec = Record::data(0, {static_cast<float>(i)});
    rec.sequence = i;
    writer.write(rec);
  }
  writer.sync();
  // A concurrent tailer sees all three frames, no torn tail.
  river::RecordLogReader reader(path);
  Record rec;
  std::size_t got = 0;
  while (reader.next(rec)) ++got;
  EXPECT_EQ(got, 3u);
  EXPECT_FALSE(reader.torn());
  writer.close();
}

TEST_F(RecordLog, CloseSurfacesFullDiskInsteadOfSilentLoss) {
  // Regression: close() used to ignore stream state, so a full disk could
  // swallow buffered frames while records_written() reported them durable.
  // /dev/full fails every flush with ENOSPC; the buffered write itself
  // "succeeds", so the loss is only detectable at sync()/close().
  if (!std::filesystem::exists("/dev/full")) GTEST_SKIP();
  {
    river::RecordLogWriter writer("/dev/full");
    writer.write(Record::data(0, {1.0F}));
    EXPECT_EQ(writer.records_written(), 1u);  // buffered, not yet durable
    EXPECT_THROW(writer.sync(), std::runtime_error);
  }  // destructor tears down best-effort without throwing
  {
    river::RecordLogWriter writer("/dev/full");
    writer.write(Record::data(0, {1.0F}));
    EXPECT_THROW(writer.close(), std::runtime_error);
  }
}

TEST_F(RecordLog, RecoverAfterPartialWriteKeepsCompleteFrames) {
  const auto path = temp_file("recover.drl");
  {
    river::RecordLogWriter writer(path);
    for (std::uint64_t i = 0; i < 20; ++i) {
      auto rec = Record::data(river::kSubtypeAudio, {static_cast<float>(i)});
      rec.sequence = i;
      writer.write(rec);
    }
  }
  // Simulate a writer dying mid-frame: chop 5 bytes off the tail.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 5);

  {
    river::RecordLogWriter writer(path, river::LogOpenMode::kRecover);
    EXPECT_EQ(writer.recovered_records(), 19u);  // torn frame 19 dropped
    auto rec = Record::data(river::kSubtypeAudio, {99.0F});
    rec.sequence = 99;
    writer.write(rec);
  }

  // The log now replays cleanly: 19 original frames then the appended one.
  river::RecordLogReader reader(path);
  Record rec;
  std::vector<std::uint64_t> sequences;
  while (reader.next(rec)) sequences.push_back(rec.sequence);
  ASSERT_EQ(sequences.size(), 20u);
  for (std::uint64_t i = 0; i < 19; ++i) EXPECT_EQ(sequences[i], i);
  EXPECT_EQ(sequences.back(), 99u);
}

TEST_F(RecordLog, RecoverOnFreshPathBehavesLikeTruncate) {
  const auto path = temp_file("recover_fresh.drl");
  river::RecordLogWriter writer(path, river::LogOpenMode::kRecover);
  EXPECT_EQ(writer.recovered_records(), 0u);
  writer.write(Record::data(0, {1.0F}));
  writer.close();
  river::VectorEmitter replay;
  EXPECT_EQ(river::replay_log(path, replay), 1u);
}

TEST_F(RecordLog, RecoverDropsEverythingAfterMidFileCorruption) {
  const auto path = temp_file("recover_corrupt.drl");
  {
    river::RecordLogWriter writer(path);
    for (std::uint64_t i = 0; i < 10; ++i) {
      auto rec = Record::data(river::kSubtypeAudio, {static_cast<float>(i)});
      rec.sequence = i;
      writer.write(rec);
    }
  }
  // Flip a byte early in the file: frames from the damaged one onward are
  // unrecoverable (WAL semantics: keep the valid prefix only).
  const auto size = std::filesystem::file_size(path);
  const auto frame_bytes = size / 10;
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(3 * frame_bytes + 20));
    const char corrupt = '\xFF';
    f.write(&corrupt, 1);
  }
  river::RecordLogWriter writer(path, river::LogOpenMode::kRecover);
  EXPECT_LE(writer.recovered_records(), 3u);
  writer.close();
  // Whatever survived must replay without throwing.
  river::VectorEmitter replay;
  EXPECT_EQ(river::replay_log(path, replay), writer.recovered_records());
}
