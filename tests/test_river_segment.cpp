// Segments and the pipeline manager: threaded execution, scope-boundary
// pausing, live relocation between virtual hosts, per-host accounting.
#include <gtest/gtest.h>

#include <thread>

#include "river/manager.hpp"
#include "river/ops_util.hpp"
#include "river/segment.hpp"

namespace river = dynriver::river;
using river::InProcessChannel;
using river::Record;
using river::RecordType;
using river::RecvStatus;

namespace {
/// Push `clips` well-formed clip scopes into a channel, then close it.
void feed_clips(river::RecordChannel& ch, int clips, int records_per_clip) {
  for (int c = 0; c < clips; ++c) {
    ch.send(Record::open_scope(river::kScopeClip, 0));
    for (int r = 0; r < records_per_clip; ++r) {
      auto rec = Record::data(river::kSubtypeAudio, {static_cast<float>(r)});
      rec.scope_depth = 1;
      ch.send(std::move(rec));
    }
    ch.send(Record::close_scope(river::kScopeClip, 0));
  }
  ch.close();
}

river::Pipeline identity_pipeline() {
  river::Pipeline p;
  p.emplace<river::IdentityOp>();
  return p;
}
}  // namespace

TEST(Segment, RunsToCleanCompletion) {
  auto in = std::make_shared<InProcessChannel>(128);
  auto out = std::make_shared<InProcessChannel>(128);
  feed_clips(*in, 3, 4);

  river::Segment segment("seg", identity_pipeline(), in, out);
  const auto stats = segment.run();
  EXPECT_EQ(stats.cause, river::SegmentStopCause::kUpstreamClosed);
  EXPECT_EQ(stats.records_in, 3u * 6u);
  EXPECT_EQ(stats.records_out, 3u * 6u);

  Record rec;
  std::size_t drained = 0;
  while (out->recv(rec) == RecvStatus::kRecord) ++drained;
  EXPECT_EQ(drained, 18u);
}

TEST(Segment, SynthesizesBadClosesWhenUpstreamDies) {
  auto in = std::make_shared<InProcessChannel>(128);
  auto out = std::make_shared<InProcessChannel>(128);
  in->send(Record::open_scope(river::kScopeClip, 0));
  in->send(Record::data(river::kSubtypeAudio, {1.0F}));
  in->close();  // dangling scope

  river::Segment segment("seg", identity_pipeline(), in, out);
  const auto stats = segment.run();
  EXPECT_EQ(stats.cause, river::SegmentStopCause::kUpstreamDisconnected);
  EXPECT_EQ(stats.bad_closes_emitted, 1u);

  Record rec;
  std::vector<Record> drained;
  while (out->recv(rec) == RecvStatus::kRecord) drained.push_back(rec);
  ASSERT_EQ(drained.size(), 3u);
  EXPECT_EQ(drained.back().type, RecordType::kBadCloseScope);
}

TEST(Segment, PausesOnlyAtScopeBoundary) {
  auto in = std::make_shared<InProcessChannel>(128);
  auto out = std::make_shared<InProcessChannel>(1024);

  river::Segment segment("seg", identity_pipeline(), in, out);

  // Open a scope and feed data first, so the segment is mid-scope when the
  // pause request arrives -- it must keep processing until the close.
  in->send(Record::open_scope(river::kScopeClip, 0));
  for (int i = 0; i < 10; ++i) {
    in->send(Record::data(river::kSubtypeAudio, {1.0F}));
  }
  std::thread runner([&] {
    const auto stats = segment.run();
    EXPECT_EQ(stats.cause, river::SegmentStopCause::kPausedForRelocation);
    // All 12 records of the open clip were processed before pausing.
    EXPECT_EQ(stats.records_in, 12u);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  segment.request_pause();  // mid-scope: must not take effect yet
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  in->send(Record::close_scope(river::kScopeClip, 0));
  runner.join();
}

TEST(PipelineManager, SegmentsRunAcrossHosts) {
  river::PipelineManager manager;
  manager.add_host("alpha");

  auto in = std::make_shared<InProcessChannel>(256);
  auto out = std::make_shared<InProcessChannel>(4096);
  feed_clips(*in, 5, 10);

  manager.deploy(std::make_unique<river::Segment>("seg", identity_pipeline(),
                                                  in, out),
                 "alpha");
  const auto stats = manager.wait_all();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats.at("seg").records_in, 5u * 12u);
  EXPECT_EQ(manager.host("alpha").records_processed(), 5u * 12u);
  EXPECT_EQ(manager.location_of("seg"), "");  // finished
}

TEST(PipelineManager, RelocationPreservesStreamIntegrity) {
  river::PipelineManager manager;
  manager.add_host("alpha");
  manager.add_host("beta");

  auto in = std::make_shared<InProcessChannel>(64);
  auto out = std::make_shared<InProcessChannel>(100000);

  manager.deploy(std::make_unique<river::Segment>("seg", identity_pipeline(),
                                                  in, out),
                 "alpha");
  EXPECT_EQ(manager.location_of("seg"), "alpha");

  // Feed clips from another thread while we relocate mid-stream.
  std::thread feeder([&] {
    for (int c = 0; c < 50; ++c) {
      in->send(Record::open_scope(river::kScopeClip, 0));
      for (int r = 0; r < 20; ++r) {
        auto rec = Record::data(river::kSubtypeAudio, {static_cast<float>(r)});
        rec.scope_depth = 1;
        in->send(std::move(rec));
      }
      in->send(Record::close_scope(river::kScopeClip, 0));
    }
    in->close();
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  const bool moved = manager.relocate("seg", "beta");
  feeder.join();
  const auto stats = manager.wait_all();

  EXPECT_EQ(stats.at("seg").records_in, 50u * 22u);
  if (moved) {
    // Work happened on both hosts; nothing was lost or duplicated.
    EXPECT_GT(manager.host("beta").records_processed(), 0u);
    EXPECT_EQ(manager.host("alpha").records_processed() +
                  manager.host("beta").records_processed(),
              50u * 22u);
  }

  // The output stream is still scope-well-formed.
  river::ScopeTracker tracker;
  Record rec;
  std::size_t total = 0;
  while (out->recv(rec) == RecvStatus::kRecord) {
    tracker.observe(rec);
    ++total;
  }
  EXPECT_EQ(total, 50u * 22u);
  EXPECT_FALSE(tracker.any_open());
}

TEST(PipelineManager, RelocateAfterFinishReturnsFalse) {
  river::PipelineManager manager;
  manager.add_host("alpha");
  manager.add_host("beta");

  auto in = std::make_shared<InProcessChannel>(64);
  auto out = std::make_shared<InProcessChannel>(1024);
  feed_clips(*in, 1, 2);

  manager.deploy(std::make_unique<river::Segment>("seg", identity_pipeline(),
                                                  in, out),
                 "alpha");
  (void)manager.wait_all();
  EXPECT_FALSE(manager.relocate("seg", "beta"));
}
