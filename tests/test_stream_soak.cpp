// Tier-2 soak: a ~10-minute synthesized station stream pushed through one
// StreamSession, asserting the bounded-memory contract at two levels:
//
//   1. exactly, at the data-structure level: the session never buffers more
//      than (longest ensemble + merge gap + chunk slack) samples, and
//   2. at the process level: peak RSS (VmHWM) grows far less than the
//      stream size — streaming 12.96M samples (51.8 MB as floats) must not
//      retain O(stream) memory.
//
// CI runs this suite under ASan+UBSan; tests/CMakeLists.txt pins the ASan
// quarantine small so freed clip buffers do not inflate VmHWM.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/stream_session.hpp"
#include "river/sample_io.hpp"
#include "synth/station.hpp"
#include "synth/station_source.hpp"

namespace core = dynriver::core;
namespace river = dynriver::river;
namespace synth = dynriver::synth;

namespace {

/// Peak resident set (VmHWM) in bytes; 0 when /proc is unavailable.
std::size_t peak_rss_bytes() {
  FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::size_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      kb = std::strtoull(line + 6, nullptr, 10);
      break;
    }
  }
  std::fclose(f);
  return kb * 1024;
}

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::strtoull(v, nullptr, 10) : fallback;
}

}  // namespace

TEST(StreamSoak, TenMinuteStationStreamStaysBounded) {
  const core::PipelineParams params;  // the paper's configuration
  // 20 x 30 s = 10 minutes by default; DR_SOAK_CLIPS scales the run.
  const std::size_t clips = env_size("DR_SOAK_CLIPS", 20);
  const auto clip_samples = static_cast<std::size_t>(
      synth::StationParams{}.clip_seconds * params.sample_rate);

  const std::size_t rss_before = peak_rss_bytes();

  synth::SensorStation station(synth::StationParams{}, 424242);
  synth::StationSource source(
      station, {synth::SpeciesId::kNOCA, synth::SpeciesId::kWBNU}, clips);

  core::StreamSession session(params);  // taps off: zero per-sample history
  std::size_t ensembles = 0;
  std::size_t retained = 0;
  std::size_t longest = 0;
  river::CallbackEnsembleSink sink([&](river::Ensemble e) {
    ++ensembles;
    retained += e.length();
    longest = std::max(longest, e.length());
  });
  const auto stats = core::run_stream(source, session, sink);

  // The whole stream went through...
  EXPECT_EQ(stats.samples_in, clips * clip_samples);
  EXPECT_EQ(source.clips_streamed(), clips);
  // ...found the planted songs (2 per clip; some may merge or be missed)...
  EXPECT_GE(ensembles, clips);
  // ...and kept roughly the paper's ~20%, so most of the stream was let go.
  EXPECT_LT(retained, stats.samples_in / 2);

  // (1) Exact bound: open ensemble + merge-gap lookahead + chunk slack.
  const std::size_t bound =
      longest + params.merge_gap_samples + 2 * params.record_size +
      params.min_ensemble_samples;
  EXPECT_LE(stats.peak_buffered_samples, bound)
      << "session buffered more than one ensemble + gap";
  EXPECT_LT(stats.peak_buffered_samples, clip_samples)
      << "session buffered a whole clip's worth of samples";

  // (2) Process-level bound: far below the 4 * samples_in bytes a buffered
  // stream would need. The margin absorbs allocator/sanitizer overhead and
  // the one clip StationSource holds while streaming it.
  const std::size_t rss_after = peak_rss_bytes();
  if (rss_before > 0 && rss_after > 0) {
    const std::size_t stream_bytes = stats.samples_in * sizeof(float);
    const std::size_t growth = rss_after - rss_before;
    EXPECT_LT(growth, (stream_bytes * 3) / 4)
        << "peak RSS grew by " << growth / (1024 * 1024)
        << " MB while streaming " << stream_bytes / (1024 * 1024) << " MB";
  }

  std::printf("soak: %zu clips, %zu samples, %zu ensembles (%.1f%% retained), "
              "peak session buffer %zu samples, peak RSS growth %.1f MB\n",
              clips, stats.samples_in, ensembles,
              100.0 * static_cast<double>(retained) /
                  static_cast<double>(stats.samples_in),
              stats.peak_buffered_samples,
              static_cast<double>(rss_after - rss_before) / (1024.0 * 1024.0));
}
