// Plan/legacy equivalence: the planned FFT (dsp/fft_plan.hpp) must match
// the legacy unplanned implementations — and for small sizes the naive DFT —
// across a size sweep of 1..257 plus primes and powers of two, forcing both
// the radix-2 and Bluestein paths. Also covers plan reuse, in-place vs
// out-of-place execution, the real-input paths, and PlanCache behaviour.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "dsp/fft.hpp"
#include "dsp/fft_plan.hpp"
#include "test_support.hpp"

namespace dsp = dynriver::dsp;
using dynriver::testsupport::max_abs_error;
using dynriver::testsupport::random_complex_signal;

namespace {

std::vector<float> random_real_signal(std::size_t n, unsigned seed) {
  std::mt19937 gen(seed);
  std::uniform_real_distribution<float> dist(-1.0F, 1.0F);
  std::vector<float> out(n);
  for (auto& v : out) v = dist(gen);
  return out;
}

double size_tol(std::size_t n) { return 1e-9 * static_cast<double>(n + 1); }

}  // namespace

// Every size from 1 to 257: covers all the tiny radix-2 sizes, every prime
// below 257, and the densest region of Bluestein edge cases (2n+1 rounding).
TEST(FftPlanSweep, MatchesUnplannedForAllSizes1To257) {
  dsp::PlanCache cache;
  for (std::size_t n = 1; n <= 257; ++n) {
    const auto x = random_complex_signal(n, static_cast<unsigned>(n) + 40000);
    std::vector<dsp::Cplx> planned(n);
    cache.get(n).forward(x, planned);
    const auto legacy = dsp::fft_unplanned(x);
    EXPECT_LT(max_abs_error(planned, legacy), size_tol(n)) << "n=" << n;
  }
}

// Larger primes and powers of two, including the pipeline's 900 and the
// Bluestein convolution boundary cases.
class FftPlanSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftPlanSizes, ForwardMatchesUnplanned) {
  const std::size_t n = GetParam();
  const auto x = random_complex_signal(n, static_cast<unsigned>(n) + 50000);
  std::vector<dsp::Cplx> planned(n);
  dsp::FftPlan plan(n);
  plan.forward(x, planned);
  EXPECT_LT(max_abs_error(planned, dsp::fft_unplanned(x)), size_tol(n))
      << "n=" << n;
}

TEST_P(FftPlanSizes, ForwardMatchesNaiveDft) {
  const std::size_t n = GetParam();
  if (n > 1024) GTEST_SKIP() << "naive DFT too slow";
  const auto x = random_complex_signal(n, static_cast<unsigned>(n) + 60000);
  std::vector<dsp::Cplx> planned(n);
  dsp::FftPlan plan(n);
  plan.forward(x, planned);
  EXPECT_LT(max_abs_error(planned, dsp::dft_naive(x)),
            1e-7 * static_cast<double>(n))
      << "n=" << n;
}

TEST_P(FftPlanSizes, InverseRoundTrips) {
  const std::size_t n = GetParam();
  const auto x = random_complex_signal(n, static_cast<unsigned>(n) + 70000);
  dsp::FftPlan plan(n);
  std::vector<dsp::Cplx> data(x.begin(), x.end());
  plan.forward(data);
  plan.inverse(data);
  EXPECT_LT(max_abs_error(data, x), size_tol(n)) << "n=" << n;
}

TEST_P(FftPlanSizes, RepeatedExecutionIsStable) {
  // The same plan re-run on the same input must give bit-identical output
  // (reused scratch must not leak state between executions).
  const std::size_t n = GetParam();
  const auto x = random_complex_signal(n, static_cast<unsigned>(n) + 80000);
  dsp::FftPlan plan(n);
  std::vector<dsp::Cplx> first(n);
  std::vector<dsp::Cplx> second(n);
  plan.forward(x, first);
  // Perturb the scratch with a different transform in between.
  const auto y = random_complex_signal(n, static_cast<unsigned>(n) + 90000);
  std::vector<dsp::Cplx> other(n);
  plan.forward(y, other);
  plan.forward(x, second);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(first[i].real(), second[i].real()) << "n=" << n << " i=" << i;
    EXPECT_EQ(first[i].imag(), second[i].imag()) << "n=" << n << " i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftPlanSizes,
                         ::testing::Values(263, 337, 521, 857, 900, 1021, 1024,
                                           2048, 2053));

TEST(FftPlanReal, RealPathsMatchLegacy) {
  for (const std::size_t n : {128UL, 900UL, 257UL}) {
    const auto x = random_real_signal(n, static_cast<unsigned>(n) + 100);
    dsp::FftPlan plan(n);

    std::vector<dsp::Cplx> spec(n);
    plan.forward_real(x, spec);
    EXPECT_LT(max_abs_error(spec, dsp::fft_real_unplanned(x)), size_tol(n))
        << "n=" << n;

    std::vector<float> mags(n);
    plan.magnitudes(x, mags);
    std::vector<float> expected(n);
    for (std::size_t k = 0; k < n; ++k) {
      expected[k] = static_cast<float>(std::abs(spec[k]));
    }
    EXPECT_LT(max_abs_error(mags, expected), 1e-6) << "n=" << n;
  }
}

// The packed half-size real path (even n), the real-specialized Bluestein
// (odd n), and the trivial n=1 path must all agree with the legacy
// widen-to-complex implementation across a dense small-size sweep plus the
// pipeline/prime/power-of-two sizes.
TEST(FftPlanReal, FastPathMatchesUnplannedSweep) {
  dsp::PlanCache cache;
  std::vector<std::size_t> sizes;
  for (std::size_t n = 1; n <= 64; ++n) sizes.push_back(n);
  for (const std::size_t n : {257UL, 450UL, 900UL, 901UL, 1024UL, 2048UL}) {
    sizes.push_back(n);
  }
  for (const std::size_t n : sizes) {
    const auto x = random_real_signal(n, static_cast<unsigned>(n) + 110000);
    std::vector<dsp::Cplx> fast(n);
    cache.get(n).forward_real(x, fast);
    EXPECT_LT(max_abs_error(fast, dsp::fft_real_unplanned(x)), size_tol(n))
        << "n=" << n;
  }
}

// Real spectra are Hermitian; the fast path constructs the mirror half
// explicitly, so the symmetry must hold exactly.
TEST(FftPlanReal, FastPathOutputIsHermitian) {
  for (const std::size_t n : {900UL, 901UL, 1024UL}) {
    const auto x = random_real_signal(n, static_cast<unsigned>(n) + 120000);
    dsp::FftPlan plan(n);
    std::vector<dsp::Cplx> spec(n);
    plan.forward_real(x, spec);
    for (std::size_t k = 1; k < n - k; ++k) {
      EXPECT_EQ(spec[n - k].real(), spec[k].real()) << "n=" << n << " k=" << k;
      EXPECT_EQ(spec[n - k].imag(), -spec[k].imag()) << "n=" << n << " k=" << k;
    }
  }
}

// The batch entry points must be bit-identical to per-record execution:
// same plan, same scratch path, just amortized dispatch.
TEST(FftPlanReal, BatchBitIdenticalToSingle) {
  constexpr std::size_t kCount = 5;
  for (const std::size_t n : {257UL, 900UL, 1024UL}) {
    const auto records =
        random_real_signal(kCount * n, static_cast<unsigned>(n) + 130000);
    dsp::FftPlan plan(n);

    std::vector<dsp::Cplx> batch_spec(kCount * n);
    plan.forward_real_batch(records, kCount, batch_spec);
    std::vector<float> batch_mags(kCount * n);
    plan.magnitudes_batch(records, kCount, batch_mags);

    for (std::size_t r = 0; r < kCount; ++r) {
      const std::span<const float> rec(records.data() + r * n, n);
      std::vector<dsp::Cplx> single(n);
      plan.forward_real(rec, single);
      std::vector<float> mags(n);
      plan.magnitudes(rec, mags);
      for (std::size_t k = 0; k < n; ++k) {
        EXPECT_EQ(batch_spec[r * n + k].real(), single[k].real())
            << "n=" << n << " r=" << r << " k=" << k;
        EXPECT_EQ(batch_spec[r * n + k].imag(), single[k].imag())
            << "n=" << n << " r=" << r << " k=" << k;
        EXPECT_EQ(batch_mags[r * n + k], mags[k])
            << "n=" << n << " r=" << r << " k=" << k;
      }
    }
  }
}

TEST(FftPlanFreeFunctions, PlanCachedWrappersMatchUnplanned) {
  // The public fft/ifft/fft_real now route through the thread-local plan
  // cache; they must agree with the legacy implementations they replaced.
  for (const std::size_t n : {64UL, 257UL, 900UL}) {
    const auto x = random_complex_signal(n, static_cast<unsigned>(n) + 200);
    EXPECT_LT(max_abs_error(dsp::fft(x), dsp::fft_unplanned(x)), size_tol(n));
    EXPECT_LT(max_abs_error(dsp::ifft(x), dsp::ifft_unplanned(x)), size_tol(n));
    const auto r = random_real_signal(n, static_cast<unsigned>(n) + 300);
    EXPECT_LT(max_abs_error(dsp::fft_real(r), dsp::fft_real_unplanned(r)),
              size_tol(n));
  }
}

TEST(PlanCache, ReusesPlansPerSize) {
  dsp::PlanCache cache;
  EXPECT_EQ(cache.cached_plans(), 0U);
  dsp::FftPlan& a = cache.get(900);
  dsp::FftPlan& b = cache.get(900);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(cache.cached_plans(), 1U);
  (void)cache.get(1024);
  EXPECT_EQ(cache.cached_plans(), 2U);
  cache.clear();
  EXPECT_EQ(cache.cached_plans(), 0U);
}

TEST(PlanCache, PlanGeometry) {
  dsp::PlanCache cache;
  EXPECT_TRUE(cache.get(1024).is_radix2());
  EXPECT_FALSE(cache.get(900).is_radix2());
  EXPECT_EQ(cache.get(900).size(), 900U);
}

TEST(PlanCache, LocalCacheIsSticky) {
  dsp::PlanCache& cache = dsp::local_plan_cache();
  const std::size_t before = cache.cached_plans();
  (void)dsp::fft(random_complex_signal(477, 1));
  (void)dsp::fft(random_complex_signal(477, 2));
  EXPECT_GE(cache.cached_plans(), before);  // 477 now cached (or was already)
  dsp::FftPlan& p = cache.get(477);
  EXPECT_EQ(&p, &cache.get(477));
}
