// SIMD kernel equivalence: every kernel in dsp/simd.hpp must match a plain
// scalar reference within 1e-9 relative tolerance, across all sizes 1..257
// (every odd-tail shape), larger primes and powers of two, and unaligned
// base addresses (the vector loads/stores must tolerate any element-aligned
// pointer). The references here are written out longhand on purpose — they
// are the definition the kernels are held to, independent of which backend
// the build selected.
//
// Width coverage: offsets run 0..7 elements and the size sweep includes
// 511/513/1023/2048/4093/4096 so every tail shape of 128-, 256-, AND
// 512-bit lanes is hit — under -march=x86-64-v4 the compiler may widen or
// re-vectorize these loops with zmm registers and masked tails (CI carries
// a v4 compile job; run the suite on AVX-512 hardware to execute them).
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <cstddef>
#include <random>
#include <vector>

#include "dsp/simd.hpp"

namespace simd = dynriver::dsp::simd;
using Cplx = std::complex<double>;

namespace {

constexpr std::size_t kMaxOffset = 7;  ///< element offsets to unalign by
                                       ///< (covers 512-bit lane misalignment)

std::vector<std::size_t> sweep_sizes() {
  std::vector<std::size_t> sizes;
  for (std::size_t n = 1; n <= 257; ++n) sizes.push_back(n);
  // Primes and powers of two around every vector-width boundary, including
  // the 8-double / 16-float shapes an AVX-512 build would use.
  for (const std::size_t n : {263UL, 511UL, 512UL, 513UL, 521UL, 1021UL,
                              1023UL, 1024UL, 2048UL, 4093UL, 4096UL}) {
    sizes.push_back(n);
  }
  return sizes;
}

std::vector<double> random_doubles(std::size_t n, unsigned seed) {
  std::mt19937 gen(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> out(n);
  for (auto& v : out) v = dist(gen);
  return out;
}

std::vector<float> random_floats(std::size_t n, unsigned seed) {
  std::mt19937 gen(seed);
  std::uniform_real_distribution<float> dist(-1.0F, 1.0F);
  std::vector<float> out(n);
  for (auto& v : out) v = dist(gen);
  return out;
}

/// |a-b| <= 1e-9 * max(1, |b|) element-wise.
template <typename T>
void expect_close(const std::vector<T>& got, const std::vector<T>& want,
                  const char* what, std::size_t n, std::size_t off) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    const double g = static_cast<double>(got[i]);
    const double w = static_cast<double>(want[i]);
    EXPECT_LE(std::abs(g - w), 1e-9 * std::max(1.0, std::abs(w)))
        << what << " n=" << n << " off=" << off << " i=" << i;
  }
}

}  // namespace

TEST(SimdKernels, MultiplyF32MatchesScalar) {
  for (const std::size_t n : sweep_sizes()) {
    for (std::size_t off = 0; off <= kMaxOffset; ++off) {
      const auto x = random_floats(n + off, static_cast<unsigned>(n) + 1);
      const auto w = random_floats(n + off, static_cast<unsigned>(n) + 2);
      std::vector<float> got(n + off, 0.0F);
      simd::multiply_f32(got.data() + off, x.data() + off, w.data() + off, n);

      std::vector<float> want(n + off, 0.0F);
      for (std::size_t i = 0; i < n; ++i) {
        want[off + i] = x[off + i] * w[off + i];
      }
      expect_close(got, want, "multiply_f32", n, off);

      // In place (the apply_window call shape).
      std::vector<float> inplace(x);
      simd::multiply_f32(inplace.data() + off, inplace.data() + off,
                         w.data() + off, n);
      expect_close(inplace, [&] {
        std::vector<float> r(x);
        for (std::size_t i = 0; i < n; ++i) r[off + i] = x[off + i] * w[off + i];
        return r;
      }(), "multiply_f32/inplace", n, off);
    }
  }
}

TEST(SimdKernels, WidenF32MatchesScalar) {
  for (const std::size_t n : sweep_sizes()) {
    for (std::size_t off = 0; off <= kMaxOffset; ++off) {
      const auto x = random_floats(n + off, static_cast<unsigned>(n) + 3);
      std::vector<double> got(n + off, 0.0);
      simd::widen_f32(x.data() + off, got.data() + off, n);
      std::vector<double> want(n + off, 0.0);
      for (std::size_t i = 0; i < n; ++i) {
        want[off + i] = static_cast<double>(x[off + i]);
      }
      expect_close(got, want, "widen_f32", n, off);
    }
  }
}

TEST(SimdKernels, ComplexMultiplyMatchesScalar) {
  for (const std::size_t n : sweep_sizes()) {
    for (std::size_t off = 0; off <= kMaxOffset; ++off) {
      // Buffers hold 2n doubles (+2*off unaligned slack).
      const auto a = random_doubles(2 * (n + off), static_cast<unsigned>(n) + 4);
      const auto b = random_doubles(2 * (n + off), static_cast<unsigned>(n) + 5);
      std::vector<double> got(2 * (n + off), 0.0);
      simd::complex_multiply(got.data() + 2 * off, a.data() + 2 * off,
                             b.data() + 2 * off, n);

      std::vector<double> want(2 * (n + off), 0.0);
      for (std::size_t k = 0; k < n; ++k) {
        const std::size_t i = 2 * (off + k);
        const Cplx p = Cplx(a[i], a[i + 1]) * Cplx(b[i], b[i + 1]);
        want[i] = p.real();
        want[i + 1] = p.imag();
      }
      expect_close(got, want, "complex_multiply", n, off);

      // In place over the accumulator (the convolution step's shape).
      std::vector<double> acc(a);
      simd::complex_multiply(acc.data() + 2 * off, acc.data() + 2 * off,
                             b.data() + 2 * off, n);
      for (std::size_t k = 0; k < n; ++k) {
        const std::size_t i = 2 * (off + k);
        EXPECT_LE(std::abs(acc[i] - want[i]),
                  1e-9 * std::max(1.0, std::abs(want[i])))
            << "inplace n=" << n << " k=" << k;
      }
    }
  }
}

TEST(SimdKernels, ComplexMultiplyRealMatchesScalar) {
  for (const std::size_t n : sweep_sizes()) {
    for (std::size_t off = 0; off <= kMaxOffset; ++off) {
      const auto x = random_floats(n + off, static_cast<unsigned>(n) + 6);
      const auto b = random_doubles(2 * (n + off), static_cast<unsigned>(n) + 7);
      std::vector<double> got(2 * (n + off), 0.0);
      simd::complex_multiply_real(got.data() + 2 * off, x.data() + off,
                                  b.data() + 2 * off, n);
      std::vector<double> want(2 * (n + off), 0.0);
      for (std::size_t k = 0; k < n; ++k) {
        const std::size_t i = 2 * (off + k);
        const auto xv = static_cast<double>(x[off + k]);
        want[i] = xv * b[i];
        want[i + 1] = xv * b[i + 1];
      }
      expect_close(got, want, "complex_multiply_real", n, off);
    }
  }
}

TEST(SimdKernels, ConjugateMatchesScalar) {
  for (const std::size_t n : sweep_sizes()) {
    const auto orig = random_doubles(2 * n, static_cast<unsigned>(n) + 8);
    std::vector<double> got(orig);
    simd::conjugate(got.data(), n);
    for (std::size_t k = 0; k < n; ++k) {
      EXPECT_EQ(got[2 * k], orig[2 * k]);
      EXPECT_EQ(got[2 * k + 1], -orig[2 * k + 1]);
    }
  }
}

TEST(SimdKernels, ConjMultiplyScaleMatchesScalar) {
  for (const std::size_t n : sweep_sizes()) {
    for (std::size_t off = 0; off <= kMaxOffset; ++off) {
      const auto a = random_doubles(2 * (n + off), static_cast<unsigned>(n) + 9);
      const auto b = random_doubles(2 * (n + off), static_cast<unsigned>(n) + 10);
      const double scale = 1.0 / static_cast<double>(2 * n);
      std::vector<double> got(2 * (n + off), 0.0);
      simd::conj_multiply_scale(got.data() + 2 * off, a.data() + 2 * off,
                                b.data() + 2 * off, scale, n);
      std::vector<double> want(2 * (n + off), 0.0);
      for (std::size_t k = 0; k < n; ++k) {
        const std::size_t i = 2 * (off + k);
        const Cplx p = std::conj(Cplx(a[i], a[i + 1])) * scale *
                       Cplx(b[i], b[i + 1]);
        want[i] = p.real();
        want[i + 1] = p.imag();
      }
      expect_close(got, want, "conj_multiply_scale", n, off);
    }
  }
}

TEST(SimdKernels, MagnitudesF32MatchesScalar) {
  for (const std::size_t n : sweep_sizes()) {
    for (std::size_t off = 0; off <= kMaxOffset; ++off) {
      const auto spec =
          random_doubles(2 * (n + off), static_cast<unsigned>(n) + 11);
      std::vector<float> got(n + off, 0.0F);
      simd::magnitudes_f32(spec.data() + 2 * off, got.data() + off, n);
      std::vector<float> want(n + off, 0.0F);
      for (std::size_t k = 0; k < n; ++k) {
        const std::size_t i = 2 * (off + k);
        want[off + k] = static_cast<float>(
            std::sqrt(spec[i] * spec[i] + spec[i + 1] * spec[i + 1]));
      }
      expect_close(got, want, "magnitudes_f32", n, off);
    }
  }
}

namespace {

/// Scalar reference radix-2 butterfly stage, the textbook loop.
void reference_stage(std::vector<double>& d, const std::vector<double>& tw,
                     std::size_t s, std::size_t half) {
  const std::size_t len = 2 * half;
  for (std::size_t i = 0; i < s; i += len) {
    for (std::size_t k = 0; k < half; ++k) {
      const Cplx w(tw[2 * k], tw[2 * k + 1]);
      const std::size_t ai = 2 * (i + k);
      const std::size_t bi = 2 * (i + k + half);
      const Cplx u(d[ai], d[ai + 1]);
      const Cplx v = Cplx(d[bi], d[bi + 1]) * w;
      const Cplx top = u + v;
      const Cplx bot = u - v;
      d[ai] = top.real();
      d[ai + 1] = top.imag();
      d[bi] = bot.real();
      d[bi + 1] = bot.imag();
    }
  }
}

}  // namespace

TEST(SimdKernels, Radix2StageMatchesScalarReference) {
  // half values cover the vector path (>= 2), its odd tail (3, 5), the
  // scalar half=1 stage, and widths past one 512-bit register (32, 64);
  // blocks give s a multiple of the butterfly span.
  for (const std::size_t half : {1UL, 2UL, 3UL, 4UL, 5UL, 8UL, 16UL, 32UL,
                                 64UL}) {
    for (const std::size_t blocks : {1UL, 2UL, 3UL}) {
      const std::size_t s = blocks * 2 * half;
      const auto tw =
          random_doubles(2 * half, static_cast<unsigned>(half) + 100);
      const auto orig =
          random_doubles(2 * s, static_cast<unsigned>(s) + 101);

      std::vector<double> got(orig);
      simd::radix2_stage(got.data(), tw.data(), s, half);

      std::vector<double> want(orig);
      reference_stage(want, tw, s, half);
      expect_close(got, want, "radix2_stage", s, half);
    }
  }
}

TEST(SimdKernels, Radix4FirstPassMatchesTwoRadix2Stages) {
  for (const std::size_t s : {4UL, 8UL, 16UL, 64UL, 256UL, 1024UL, 4096UL}) {
    const auto orig = random_doubles(2 * s, static_cast<unsigned>(s) + 200);

    std::vector<double> got(orig);
    simd::radix4_first_pass(got.data(), s);

    // Reference: the len=2 stage (w = 1) then the len=4 stage (w = 1, -i),
    // with the exact -i rotation the fused pass implements.
    std::vector<double> want(orig);
    reference_stage(want, {1.0, 0.0}, s, 1);
    reference_stage(want, {1.0, 0.0, 0.0, -1.0}, s, 2);
    expect_close(got, want, "radix4_first_pass", s, 0);
  }
}
