// SIMD kernel equivalence: every kernel in dsp/simd.hpp must match a plain
// scalar reference within 1e-9 relative tolerance, across all sizes 1..257
// (every odd-tail shape), larger primes and powers of two, and unaligned
// base addresses (the vector loads/stores must tolerate any element-aligned
// pointer). The references here are written out longhand on purpose — they
// are the definition the kernels are held to, independent of which backend
// the build selected.
//
// Width coverage: offsets run 0..7 elements and the size sweep includes
// 511/513/1023/2048/4093/4096 so every tail shape of 128-, 256-, AND
// 512-bit lanes is hit — under -march=x86-64-v4 the compiler may widen or
// re-vectorize these loops with zmm registers and masked tails (CI carries
// a v4 compile job; run the suite on AVX-512 hardware to execute them).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstddef>
#include <limits>
#include <random>
#include <vector>

#include "dsp/simd.hpp"

namespace simd = dynriver::dsp::simd;
using Cplx = std::complex<double>;

namespace {

constexpr std::size_t kMaxOffset = 7;  ///< element offsets to unalign by
                                       ///< (covers 512-bit lane misalignment)

std::vector<std::size_t> sweep_sizes() {
  std::vector<std::size_t> sizes;
  for (std::size_t n = 1; n <= 257; ++n) sizes.push_back(n);
  // Primes and powers of two around every vector-width boundary, including
  // the 8-double / 16-float shapes an AVX-512 build would use.
  for (const std::size_t n : {263UL, 511UL, 512UL, 513UL, 521UL, 1021UL,
                              1023UL, 1024UL, 2048UL, 4093UL, 4096UL}) {
    sizes.push_back(n);
  }
  return sizes;
}

std::vector<double> random_doubles(std::size_t n, unsigned seed) {
  std::mt19937 gen(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> out(n);
  for (auto& v : out) v = dist(gen);
  return out;
}

std::vector<float> random_floats(std::size_t n, unsigned seed) {
  std::mt19937 gen(seed);
  std::uniform_real_distribution<float> dist(-1.0F, 1.0F);
  std::vector<float> out(n);
  for (auto& v : out) v = dist(gen);
  return out;
}

/// |a-b| <= 1e-9 * max(1, |b|) element-wise.
template <typename T>
void expect_close(const std::vector<T>& got, const std::vector<T>& want,
                  const char* what, std::size_t n, std::size_t off) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    const double g = static_cast<double>(got[i]);
    const double w = static_cast<double>(want[i]);
    EXPECT_LE(std::abs(g - w), 1e-9 * std::max(1.0, std::abs(w)))
        << what << " n=" << n << " off=" << off << " i=" << i;
  }
}

}  // namespace

TEST(SimdKernels, MultiplyF32MatchesScalar) {
  for (const std::size_t n : sweep_sizes()) {
    for (std::size_t off = 0; off <= kMaxOffset; ++off) {
      const auto x = random_floats(n + off, static_cast<unsigned>(n) + 1);
      const auto w = random_floats(n + off, static_cast<unsigned>(n) + 2);
      std::vector<float> got(n + off, 0.0F);
      simd::multiply_f32(got.data() + off, x.data() + off, w.data() + off, n);

      std::vector<float> want(n + off, 0.0F);
      for (std::size_t i = 0; i < n; ++i) {
        want[off + i] = x[off + i] * w[off + i];
      }
      expect_close(got, want, "multiply_f32", n, off);

      // In place (the apply_window call shape).
      std::vector<float> inplace(x);
      simd::multiply_f32(inplace.data() + off, inplace.data() + off,
                         w.data() + off, n);
      expect_close(inplace, [&] {
        std::vector<float> r(x);
        for (std::size_t i = 0; i < n; ++i) r[off + i] = x[off + i] * w[off + i];
        return r;
      }(), "multiply_f32/inplace", n, off);
    }
  }
}

TEST(SimdKernels, WidenF32MatchesScalar) {
  for (const std::size_t n : sweep_sizes()) {
    for (std::size_t off = 0; off <= kMaxOffset; ++off) {
      const auto x = random_floats(n + off, static_cast<unsigned>(n) + 3);
      std::vector<double> got(n + off, 0.0);
      simd::widen_f32(x.data() + off, got.data() + off, n);
      std::vector<double> want(n + off, 0.0);
      for (std::size_t i = 0; i < n; ++i) {
        want[off + i] = static_cast<double>(x[off + i]);
      }
      expect_close(got, want, "widen_f32", n, off);
    }
  }
}

TEST(SimdKernels, ComplexMultiplyMatchesScalar) {
  for (const std::size_t n : sweep_sizes()) {
    for (std::size_t off = 0; off <= kMaxOffset; ++off) {
      // Buffers hold 2n doubles (+2*off unaligned slack).
      const auto a = random_doubles(2 * (n + off), static_cast<unsigned>(n) + 4);
      const auto b = random_doubles(2 * (n + off), static_cast<unsigned>(n) + 5);
      std::vector<double> got(2 * (n + off), 0.0);
      simd::complex_multiply(got.data() + 2 * off, a.data() + 2 * off,
                             b.data() + 2 * off, n);

      std::vector<double> want(2 * (n + off), 0.0);
      for (std::size_t k = 0; k < n; ++k) {
        const std::size_t i = 2 * (off + k);
        const Cplx p = Cplx(a[i], a[i + 1]) * Cplx(b[i], b[i + 1]);
        want[i] = p.real();
        want[i + 1] = p.imag();
      }
      expect_close(got, want, "complex_multiply", n, off);

      // In place over the accumulator (the convolution step's shape).
      std::vector<double> acc(a);
      simd::complex_multiply(acc.data() + 2 * off, acc.data() + 2 * off,
                             b.data() + 2 * off, n);
      for (std::size_t k = 0; k < n; ++k) {
        const std::size_t i = 2 * (off + k);
        EXPECT_LE(std::abs(acc[i] - want[i]),
                  1e-9 * std::max(1.0, std::abs(want[i])))
            << "inplace n=" << n << " k=" << k;
      }
    }
  }
}

TEST(SimdKernels, ComplexMultiplyRealMatchesScalar) {
  for (const std::size_t n : sweep_sizes()) {
    for (std::size_t off = 0; off <= kMaxOffset; ++off) {
      const auto x = random_floats(n + off, static_cast<unsigned>(n) + 6);
      const auto b = random_doubles(2 * (n + off), static_cast<unsigned>(n) + 7);
      std::vector<double> got(2 * (n + off), 0.0);
      simd::complex_multiply_real(got.data() + 2 * off, x.data() + off,
                                  b.data() + 2 * off, n);
      std::vector<double> want(2 * (n + off), 0.0);
      for (std::size_t k = 0; k < n; ++k) {
        const std::size_t i = 2 * (off + k);
        const auto xv = static_cast<double>(x[off + k]);
        want[i] = xv * b[i];
        want[i + 1] = xv * b[i + 1];
      }
      expect_close(got, want, "complex_multiply_real", n, off);
    }
  }
}

TEST(SimdKernels, ConjugateMatchesScalar) {
  for (const std::size_t n : sweep_sizes()) {
    const auto orig = random_doubles(2 * n, static_cast<unsigned>(n) + 8);
    std::vector<double> got(orig);
    simd::conjugate(got.data(), n);
    for (std::size_t k = 0; k < n; ++k) {
      EXPECT_EQ(got[2 * k], orig[2 * k]);
      EXPECT_EQ(got[2 * k + 1], -orig[2 * k + 1]);
    }
  }
}

TEST(SimdKernels, ConjMultiplyScaleMatchesScalar) {
  for (const std::size_t n : sweep_sizes()) {
    for (std::size_t off = 0; off <= kMaxOffset; ++off) {
      const auto a = random_doubles(2 * (n + off), static_cast<unsigned>(n) + 9);
      const auto b = random_doubles(2 * (n + off), static_cast<unsigned>(n) + 10);
      const double scale = 1.0 / static_cast<double>(2 * n);
      std::vector<double> got(2 * (n + off), 0.0);
      simd::conj_multiply_scale(got.data() + 2 * off, a.data() + 2 * off,
                                b.data() + 2 * off, scale, n);
      std::vector<double> want(2 * (n + off), 0.0);
      for (std::size_t k = 0; k < n; ++k) {
        const std::size_t i = 2 * (off + k);
        const Cplx p = std::conj(Cplx(a[i], a[i + 1])) * scale *
                       Cplx(b[i], b[i + 1]);
        want[i] = p.real();
        want[i + 1] = p.imag();
      }
      expect_close(got, want, "conj_multiply_scale", n, off);
    }
  }
}

TEST(SimdKernels, MagnitudesF32MatchesScalar) {
  for (const std::size_t n : sweep_sizes()) {
    for (std::size_t off = 0; off <= kMaxOffset; ++off) {
      const auto spec =
          random_doubles(2 * (n + off), static_cast<unsigned>(n) + 11);
      std::vector<float> got(n + off, 0.0F);
      simd::magnitudes_f32(spec.data() + 2 * off, got.data() + off, n);
      std::vector<float> want(n + off, 0.0F);
      for (std::size_t k = 0; k < n; ++k) {
        const std::size_t i = 2 * (off + k);
        want[off + k] = static_cast<float>(
            std::sqrt(spec[i] * spec[i] + spec[i + 1] * spec[i + 1]));
      }
      expect_close(got, want, "magnitudes_f32", n, off);
    }
  }
}

namespace {

/// Scalar reference radix-2 butterfly stage, the textbook loop.
void reference_stage(std::vector<double>& d, const std::vector<double>& tw,
                     std::size_t s, std::size_t half) {
  const std::size_t len = 2 * half;
  for (std::size_t i = 0; i < s; i += len) {
    for (std::size_t k = 0; k < half; ++k) {
      const Cplx w(tw[2 * k], tw[2 * k + 1]);
      const std::size_t ai = 2 * (i + k);
      const std::size_t bi = 2 * (i + k + half);
      const Cplx u(d[ai], d[ai + 1]);
      const Cplx v = Cplx(d[bi], d[bi + 1]) * w;
      const Cplx top = u + v;
      const Cplx bot = u - v;
      d[ai] = top.real();
      d[ai + 1] = top.imag();
      d[bi] = bot.real();
      d[bi + 1] = bot.imag();
    }
  }
}

}  // namespace

TEST(SimdKernels, Radix2StageMatchesScalarReference) {
  // half values cover the vector path (>= 2), its odd tail (3, 5), the
  // scalar half=1 stage, and widths past one 512-bit register (32, 64);
  // blocks give s a multiple of the butterfly span.
  for (const std::size_t half : {1UL, 2UL, 3UL, 4UL, 5UL, 8UL, 16UL, 32UL,
                                 64UL}) {
    for (const std::size_t blocks : {1UL, 2UL, 3UL}) {
      const std::size_t s = blocks * 2 * half;
      const auto tw =
          random_doubles(2 * half, static_cast<unsigned>(half) + 100);
      const auto orig =
          random_doubles(2 * s, static_cast<unsigned>(s) + 101);

      std::vector<double> got(orig);
      simd::radix2_stage(got.data(), tw.data(), s, half);

      std::vector<double> want(orig);
      reference_stage(want, tw, s, half);
      expect_close(got, want, "radix2_stage", s, half);
    }
  }
}

TEST(SimdKernels, Radix4FirstPassMatchesTwoRadix2Stages) {
  for (const std::size_t s : {4UL, 8UL, 16UL, 64UL, 256UL, 1024UL, 4096UL}) {
    const auto orig = random_doubles(2 * s, static_cast<unsigned>(s) + 200);

    std::vector<double> got(orig);
    simd::radix4_first_pass(got.data(), s);

    // Reference: the len=2 stage (w = 1) then the len=4 stage (w = 1, -i),
    // with the exact -i rotation the fused pass implements.
    std::vector<double> want(orig);
    reference_stage(want, {1.0, 0.0}, s, 1);
    reference_stage(want, {1.0, 0.0, 0.0, -1.0}, s, 2);
    expect_close(got, want, "radix4_first_pass", s, 0);
  }
}

// ---------------------------------------------------------------------------
// Scoring-chain kernels. These feed the anomaly scorer's batch path, whose
// outputs must be bit-identical to the incremental streaming path, so the
// references below are held to EXPECT_DOUBLE_EQ (not a tolerance): each
// reduction reference spells out the documented lane-order contract longhand
// (four lanes, sequential n%4 tail, ((l0+l2)+(l1+l3))+tail combine), and a
// second check keeps the contract result within float-ish distance of the
// naive sequential sum so the contract itself can't drift into nonsense.
// ---------------------------------------------------------------------------

namespace {

/// The lane-order reduction contract from dsp/simd.hpp, written longhand.
double lane_order_sum(const float* x, std::size_t n) {
  double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    l0 += static_cast<double>(x[i]);
    l1 += static_cast<double>(x[i + 1]);
    l2 += static_cast<double>(x[i + 2]);
    l3 += static_cast<double>(x[i + 3]);
  }
  double tail = 0.0;
  for (; i < n; ++i) tail += static_cast<double>(x[i]);
  return ((l0 + l2) + (l1 + l3)) + tail;
}

double lane_order_sum_squares(const float* x, std::size_t n) {
  double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    l0 += static_cast<double>(x[i]) * static_cast<double>(x[i]);
    l1 += static_cast<double>(x[i + 1]) * static_cast<double>(x[i + 1]);
    l2 += static_cast<double>(x[i + 2]) * static_cast<double>(x[i + 2]);
    l3 += static_cast<double>(x[i + 3]) * static_cast<double>(x[i + 3]);
  }
  double tail = 0.0;
  for (; i < n; ++i) {
    tail += static_cast<double>(x[i]) * static_cast<double>(x[i]);
  }
  return ((l0 + l2) + (l1 + l3)) + tail;
}

double naive_sum(const float* x, std::size_t n) {
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) s += static_cast<double>(x[i]);
  return s;
}

}  // namespace

TEST(SimdScoringKernels, SumF32MatchesLaneOrderContractExactly) {
  for (const std::size_t n : sweep_sizes()) {
    for (std::size_t off = 0; off <= kMaxOffset; ++off) {
      const auto x = random_floats(n + off, static_cast<unsigned>(n) + 300);
      const double got = simd::sum_f32(x.data() + off, n);
      EXPECT_DOUBLE_EQ(got, lane_order_sum(x.data() + off, n))
          << "sum_f32 n=" << n << " off=" << off;
      const double naive = naive_sum(x.data() + off, n);
      EXPECT_LE(std::abs(got - naive), 1e-9 * std::max(1.0, std::abs(naive)))
          << "sum_f32 vs naive n=" << n << " off=" << off;
    }
  }
}

TEST(SimdScoringKernels, SumSquaresF32MatchesLaneOrderContractExactly) {
  for (const std::size_t n : sweep_sizes()) {
    for (std::size_t off = 0; off <= kMaxOffset; ++off) {
      const auto x = random_floats(n + off, static_cast<unsigned>(n) + 301);
      const double got = simd::sum_squares_f32(x.data() + off, n);
      EXPECT_DOUBLE_EQ(got, lane_order_sum_squares(x.data() + off, n))
          << "sum_squares_f32 n=" << n << " off=" << off;
      double naive = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        const double v = static_cast<double>(x[off + i]);
        naive += v * v;
      }
      EXPECT_LE(std::abs(got - naive), 1e-9 * std::max(1.0, naive))
          << "sum_squares_f32 vs naive n=" << n << " off=" << off;
    }
  }
}

TEST(SimdScoringKernels, MeanVarF32MatchesLaneOrderContractExactly) {
  for (const std::size_t n : sweep_sizes()) {
    for (std::size_t off = 0; off <= kMaxOffset; ++off) {
      const auto x = random_floats(n + off, static_cast<unsigned>(n) + 302);
      double mean = -1.0, var = -1.0;
      simd::mean_var_f32(x.data() + off, n, &mean, &var);
      const double inv_n = 1.0 / static_cast<double>(n);
      const double want_mean = lane_order_sum(x.data() + off, n) * inv_n;
      const double raw_var =
          lane_order_sum_squares(x.data() + off, n) * inv_n -
          want_mean * want_mean;
      EXPECT_DOUBLE_EQ(mean, want_mean) << "mean_var n=" << n << " off=" << off;
      EXPECT_DOUBLE_EQ(var, raw_var > 0.0 ? raw_var : 0.0)
          << "mean_var n=" << n << " off=" << off;
      EXPECT_GE(var, 0.0);
    }
  }
}

TEST(SimdScoringKernels, MeanVarF32ZeroLengthAndConstantInput) {
  double mean = -1.0, var = -1.0;
  simd::mean_var_f32(nullptr, 0, &mean, &var);
  EXPECT_EQ(mean, 0.0);
  EXPECT_EQ(var, 0.0);
  // A constant series may produce a tiny negative E[x^2]-mu^2 residue; the
  // kernel's clamp must report exactly zero variance, never negative.
  for (const std::size_t n : {1UL, 7UL, 64UL, 257UL}) {
    const std::vector<float> x(n, 0.1F);
    simd::mean_var_f32(x.data(), n, &mean, &var);
    EXPECT_GE(var, 0.0) << "n=" << n;
    EXPECT_LE(var, 1e-12) << "n=" << n;
  }
}

TEST(SimdScoringKernels, NormalizeF32MatchesScalarExactly) {
  const float mu = 0.125F;
  const float inv_sigma = 1.75F;
  for (const std::size_t n : sweep_sizes()) {
    for (std::size_t off = 0; off <= kMaxOffset; ++off) {
      const auto x = random_floats(n + off, static_cast<unsigned>(n) + 303);
      std::vector<float> got(n + off, 0.0F);
      simd::normalize_f32(got.data() + off, x.data() + off, n, mu, inv_sigma);
      for (std::size_t i = 0; i < n; ++i) {
        const float want = (x[off + i] - mu) * inv_sigma;
        EXPECT_EQ(got[off + i], want)
            << "normalize_f32 n=" << n << " off=" << off << " i=" << i;
      }
      // In place: dst aliasing x must produce the same values.
      std::vector<float> inplace(x);
      simd::normalize_f32(inplace.data() + off, inplace.data() + off, n, mu,
                          inv_sigma);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(inplace[off + i], got[off + i])
            << "normalize_f32 in-place n=" << n << " off=" << off << " i=" << i;
      }
    }
  }
}

TEST(SimdScoringKernels, SegmentMeansF32MatchesLaneOrderContractExactly) {
  // PAA geometry: segments x seg_len, exact divisors only. seg_len sweeps
  // the tail shapes; segment count covers one vector of outputs and more.
  for (const std::size_t segments : {1UL, 3UL, 8UL, 16UL}) {
    for (const std::size_t seg_len :
         {1UL, 2UL, 3UL, 4UL, 5UL, 7UL, 8UL, 24UL, 100UL, 257UL}) {
      for (std::size_t off = 0; off <= kMaxOffset; ++off) {
        const std::size_t n = segments * seg_len;
        const auto x =
            random_floats(n + off, static_cast<unsigned>(n) + 304);
        std::vector<float> got(segments, 0.0F);
        simd::segment_means_f32(x.data() + off, segments, seg_len, got.data());
        const double inv_len = 1.0 / static_cast<double>(seg_len);
        for (std::size_t s = 0; s < segments; ++s) {
          const float want = static_cast<float>(
              lane_order_sum(x.data() + off + s * seg_len, seg_len) * inv_len);
          EXPECT_EQ(got[s], want) << "segment_means segments=" << segments
                                  << " seg_len=" << seg_len << " off=" << off
                                  << " s=" << s;
        }
      }
    }
  }
}

TEST(SimdScoringKernels, DiscretizeF32MatchesTextbookScanExactly) {
  // Breakpoint tables for alphabet sizes 2..8 (1..7 breakpoints), values in
  // the same [-1, 1] range as the inputs so every branch is taken.
  for (const std::size_t n_breaks : {1UL, 2UL, 3UL, 4UL, 7UL}) {
    std::vector<double> breaks(n_breaks);
    for (std::size_t b = 0; b < n_breaks; ++b) {
      breaks[b] = -0.8 + 1.6 * static_cast<double>(b) /
                             static_cast<double>(n_breaks);
    }
    for (const std::size_t n : sweep_sizes()) {
      for (std::size_t off = 0; off <= kMaxOffset; ++off) {
        auto x = random_floats(n + off, static_cast<unsigned>(n) + 305);
        // Plant exact-breakpoint hits so the >= boundary is exercised.
        if (n > 2) {
          x[off] = static_cast<float>(breaks[0]);
          x[off + n / 2] = static_cast<float>(breaks[n_breaks - 1]);
        }
        std::vector<std::uint8_t> got(n + off, 255);
        simd::discretize_f32(x.data() + off, n, breaks.data(), n_breaks,
                             got.data() + off);
        for (std::size_t i = 0; i < n; ++i) {
          const double v = static_cast<double>(x[off + i]);
          unsigned sym = 0;
          for (std::size_t b = 0; b < n_breaks; ++b) {
            if (v >= breaks[b]) ++sym;
          }
          EXPECT_EQ(got[off + i], static_cast<std::uint8_t>(sym))
              << "discretize n_breaks=" << n_breaks << " n=" << n
              << " off=" << off << " i=" << i;
        }
      }
    }
  }
}

TEST(SimdScoringKernels, DiscretizeF32MapsNaNToSymbolZero) {
  const double breaks[] = {-0.5, 0.0, 0.5};
  std::vector<float> x(13, std::numeric_limits<float>::quiet_NaN());
  std::vector<std::uint8_t> out(13, 255);
  simd::discretize_f32(x.data(), x.size(), breaks, 3, out.data());
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_EQ(out[i], 0) << "i=" << i;
  }
}

TEST(SimdScoringKernels, MaxInplaceF64MatchesScalarExactly) {
  for (const std::size_t n : sweep_sizes()) {
    for (std::size_t off = 0; off <= kMaxOffset; ++off) {
      const auto a = random_doubles(n + off, static_cast<unsigned>(n) + 306);
      const auto b = random_doubles(n + off, static_cast<unsigned>(n) + 307);
      std::vector<double> got(a);
      simd::max_inplace_f64(got.data() + off, b.data() + off, n);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(got[off + i], std::max(a[off + i], b[off + i]))
            << "max_inplace n=" << n << " off=" << off << " i=" << i;
      }
    }
  }
}

TEST(SimdScoringKernels, AddInplaceF64MatchesScalarExactly) {
  for (const std::size_t n : sweep_sizes()) {
    for (std::size_t off = 0; off <= kMaxOffset; ++off) {
      const auto a = random_doubles(n + off, static_cast<unsigned>(n) + 308);
      const auto b = random_doubles(n + off, static_cast<unsigned>(n) + 309);
      std::vector<double> got(a);
      simd::add_inplace_f64(got.data() + off, b.data() + off, n);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(got[off + i], a[off + i] + b[off + i])
            << "add_inplace n=" << n << " off=" << off << " i=" << i;
      }
    }
  }
}

TEST(SimdScoringKernels, ScaleF64MatchesScalarExactly) {
  const double s = 1.0 / 3.0;
  for (const std::size_t n : sweep_sizes()) {
    for (std::size_t off = 0; off <= kMaxOffset; ++off) {
      const auto a = random_doubles(n + off, static_cast<unsigned>(n) + 310);
      std::vector<double> got(a);
      simd::scale_f64(got.data() + off, n, s);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(got[off + i], a[off + i] * s)
            << "scale n=" << n << " off=" << off << " i=" << i;
      }
    }
  }
}
