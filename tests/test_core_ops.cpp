// River operator implementations of the acoustic pipeline: scope handling,
// wav2rec/rec2wav, spectral stages, and end-to-end equivalence between the
// operator pipeline and the batch facades.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <span>

#include "core/birdsong.hpp"
#include "core/stream_session.hpp"
#include "core/extractor.hpp"
#include "core/features.hpp"
#include "core/ops_acoustic.hpp"
#include "core/ops_anomaly.hpp"
#include "core/ops_spectral.hpp"
#include "river/scope.hpp"
#include "synth/station.hpp"
#include "test_support.hpp"

namespace core = dynriver::core;
namespace dsp = dynriver::dsp;
namespace river = dynriver::river;
namespace synth = dynriver::synth;
using river::Record;
using river::RecordType;

namespace {
core::PipelineParams test_params() {
  core::PipelineParams p;
  return p;
}

synth::ClipRecording record_test_clip(std::uint64_t seed) {
  return dynriver::testsupport::record_station_clip(
      seed, {synth::SpeciesId::kNOCA, synth::SpeciesId::kTUTI});
}
}  // namespace

TEST(ClipToRecords, ScopedStreamShape) {
  dsp::WavClip clip;
  clip.sample_rate = 21600;
  clip.samples.assign(2000, 0.25F);
  const auto records = core::clip_to_records(clip, 7, 900);
  // open + 3 data (900+900+200) + close
  ASSERT_EQ(records.size(), 5u);
  EXPECT_EQ(records.front().type, RecordType::kOpenScope);
  EXPECT_EQ(records.front().attr_int(core::kAttrClipId, -1), 7);
  EXPECT_DOUBLE_EQ(records.front().attr_double(core::kAttrSampleRate, 0), 21600.0);
  EXPECT_EQ(records[1].floats().size(), 900u);
  EXPECT_EQ(records[3].floats().size(), 200u);
  EXPECT_EQ(records.back().type, RecordType::kCloseScope);

  river::ScopeTracker tracker;
  for (const auto& rec : records) tracker.observe(rec);
  EXPECT_FALSE(tracker.any_open());
}

TEST(Wav2Rec, DecodesWavBytesIntoClipScope) {
  dsp::WavClip clip;
  clip.sample_rate = 21600;
  clip.samples.assign(1800, 0.5F);

  auto wav_rec = Record::data_bytes(river::kSubtypeRaw, dsp::encode_wav(clip));
  wav_rec.set_attr(core::kAttrSpecies, std::string("NOCA"));

  river::Pipeline p;
  p.emplace<core::Wav2RecOp>(900);
  const auto out = river::run_pipeline(p, {std::move(wav_rec)});
  ASSERT_EQ(out.size(), 4u);  // open + 2 data + close
  EXPECT_EQ(out.front().attr_string(core::kAttrSpecies, ""), "NOCA");
}

TEST(Rec2Wav, InverseOfClipToRecords) {
  dsp::WavClip clip;
  clip.sample_rate = 21600;
  clip.samples.resize(4321);
  for (std::size_t i = 0; i < clip.samples.size(); ++i) {
    clip.samples[i] = static_cast<float>(std::sin(0.01 * static_cast<double>(i)));
  }

  river::Pipeline p;
  p.emplace<core::Rec2WavOp>(river::kScopeClip);
  const auto out =
      river::run_pipeline(p, core::clip_to_records(clip, 1, 900));
  ASSERT_EQ(out.size(), 1u);
  const auto decoded = dsp::decode_wav(out[0].bytes());
  ASSERT_EQ(decoded.samples.size(), clip.samples.size());
  for (std::size_t i = 0; i < decoded.samples.size(); i += 97) {
    EXPECT_NEAR(decoded.samples[i], clip.samples[i], 1.0F / 16000.0F);
  }
}

TEST(SaxAnomalyOp, EmitsAlignedScoreRecords) {
  river::Pipeline p;
  p.emplace<core::SaxAnomalyOp>(test_params().anomaly);

  dsp::WavClip clip;
  clip.sample_rate = 21600;
  clip.samples.assign(2700, 0.1F);
  const auto out = river::run_pipeline(p, core::clip_to_records(clip, 0, 900));
  // open, (audio, score) x3, close
  ASSERT_EQ(out.size(), 8u);
  for (std::size_t i = 1; i + 1 < out.size(); i += 2) {
    EXPECT_EQ(out[i].subtype, river::kSubtypeAudio);
    EXPECT_EQ(out[i + 1].subtype, river::kSubtypeAnomalyScore);
    EXPECT_EQ(out[i].floats().size(), out[i + 1].floats().size());
  }
}

TEST(TriggerOp, ConvertsScoresToBinarySignal) {
  river::Pipeline p;
  p.emplace<core::TriggerOp>(5.0, 100);

  std::vector<Record> input;
  input.push_back(Record::open_scope(river::kScopeClip, 0));
  // Flat scores (baseline), then a jump.
  river::FloatVec flat(500, 0.1F);
  for (std::size_t i = 0; i < 200; ++i) {
    flat[i] = 0.1F + 0.0001F * static_cast<float>(i % 7);
  }
  input.push_back(Record::data(river::kSubtypeAnomalyScore, flat));
  river::FloatVec jump(100, 5.0F);
  input.push_back(Record::data(river::kSubtypeAnomalyScore, jump));
  input.push_back(Record::close_scope(river::kScopeClip, 0));

  const auto out = river::run_pipeline(p, std::move(input));
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[1].subtype, river::kSubtypeTrigger);
  EXPECT_EQ(out[2].subtype, river::kSubtypeTrigger);
  // All of the jump must be triggered.
  for (const float v : out[2].floats()) EXPECT_FLOAT_EQ(v, 1.0F);
}

TEST(TriggerState, LeadingZerosIgnored) {
  core::TriggerState state(5.0, 10);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(state.push(0.0));
  // Baseline must still be empty: zeros were warmup, not statistics.
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(state.push(0.5 + 0.001 * i));
  // Now the baseline has 10 entries around 0.5; a huge score triggers.
  EXPECT_TRUE(state.push(50.0));
}

TEST(TriggerState, HoldBridgesShortDips) {
  core::TriggerState state(5.0, 5, /*hold_samples=*/3);
  for (int i = 0; i < 50; ++i) (void)state.push(0.1 + 0.001 * (i % 3));
  EXPECT_TRUE(state.push(10.0));
  // Short dip below threshold: held.
  EXPECT_TRUE(state.push(0.1));
  EXPECT_TRUE(state.push(0.1));
  EXPECT_TRUE(state.push(0.1));
  // Hold exhausted: releases.
  EXPECT_FALSE(state.push(0.1));
}

TEST(ResliceOp, InsertsOverlapRecords) {
  river::Pipeline p;
  p.emplace<core::ResliceOp>();

  river::FloatVec a(4), b(4);
  for (std::size_t i = 0; i < 4; ++i) {
    a[i] = static_cast<float>(i);          // 0 1 2 3
    b[i] = static_cast<float>(10 + i);     // 10 11 12 13
  }
  std::vector<Record> input;
  input.push_back(Record::open_scope(river::kScopeEnsemble, 0));
  input.push_back(Record::data(river::kSubtypeAudio, a));
  input.push_back(Record::data(river::kSubtypeAudio, b));
  input.push_back(Record::close_scope(river::kScopeEnsemble, 0));

  const auto out = river::run_pipeline(p, std::move(input));
  // open, a, overlap, b, close
  ASSERT_EQ(out.size(), 5u);
  const auto overlap = out[2].floats();
  ASSERT_EQ(overlap.size(), 4u);
  EXPECT_FLOAT_EQ(overlap[0], 2.0F);
  EXPECT_FLOAT_EQ(overlap[1], 3.0F);
  EXPECT_FLOAT_EQ(overlap[2], 10.0F);
  EXPECT_FLOAT_EQ(overlap[3], 11.0F);
}

TEST(ResliceOp, MismatchedSizesSkipOverlap) {
  river::Pipeline p;
  p.emplace<core::ResliceOp>();
  std::vector<Record> input;
  input.push_back(Record::data(river::kSubtypeAudio, {1.0F, 2.0F}));
  input.push_back(Record::data(river::kSubtypeAudio, {3.0F}));  // partial tail
  const auto out = river::run_pipeline(p, std::move(input));
  EXPECT_EQ(out.size(), 2u);  // no overlap inserted
}

TEST(SpectralChain, ProducesBandLimitedSpectra) {
  auto params = test_params();
  river::Pipeline p;
  p.emplace<core::WelchWindowOp>(params.window);
  p.emplace<core::Float2CplxOp>();
  p.emplace<core::DftOp>(params.dft_size);
  p.emplace<core::CAbsOp>();
  p.emplace<core::CutoutOp>(params);

  // 3 kHz tone record.
  river::FloatVec tone(900);
  for (std::size_t i = 0; i < tone.size(); ++i) {
    tone[i] = static_cast<float>(std::sin(
        2.0 * std::numbers::pi * 3000.0 * static_cast<double>(i) / params.sample_rate));
  }
  const auto out =
      river::run_pipeline(p, {Record::data(river::kSubtypeAudio, tone)});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].subtype, river::kSubtypeSpectrum);
  const auto spectrum = out[0].floats();
  ASSERT_EQ(spectrum.size(), 350u);  // paper band
  // Peak at (3000 - 1200) / 24 = bin 75.
  std::size_t peak = 0;
  for (std::size_t i = 1; i < spectrum.size(); ++i) {
    if (spectrum[i] > spectrum[peak]) peak = i;
  }
  EXPECT_EQ(peak, 75u);
}

TEST(PaaOpAndRec2Vect, MergeAndStride) {
  river::Pipeline p;
  p.emplace<core::PaaOp>(5);
  p.emplace<core::Rec2VectOp>(2, 2);

  std::vector<Record> input;
  input.push_back(Record::open_scope(river::kScopeEnsemble, 0));
  for (int r = 0; r < 4; ++r) {
    river::FloatVec spec(10, static_cast<float>(r + 1));
    input.push_back(Record::data(river::kSubtypeSpectrum, std::move(spec)));
  }
  input.push_back(Record::close_scope(river::kScopeEnsemble, 0));

  const auto out = river::run_pipeline(p, std::move(input));
  // open, pattern(r0+r1), pattern(r2+r3), close
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[1].subtype, river::kSubtypePattern);
  ASSERT_EQ(out[1].floats().size(), 4u);  // 2 records x (10/5) features
  EXPECT_FLOAT_EQ(out[1].floats()[0], 1.0F);
  EXPECT_FLOAT_EQ(out[1].floats()[2], 2.0F);
  EXPECT_FLOAT_EQ(out[2].floats()[0], 3.0F);
}

TEST(Rec2VectOp, ResetsAtScopeBoundaries) {
  river::Pipeline p;
  p.emplace<core::Rec2VectOp>(2, 1);
  std::vector<Record> input;
  input.push_back(Record::open_scope(river::kScopeEnsemble, 0));
  input.push_back(Record::data(river::kSubtypeSpectrum, {1.0F}));
  input.push_back(Record::close_scope(river::kScopeEnsemble, 0));
  input.push_back(Record::open_scope(river::kScopeEnsemble, 0));
  input.push_back(Record::data(river::kSubtypeSpectrum, {2.0F}));
  input.push_back(Record::close_scope(river::kScopeEnsemble, 0));
  const auto out = river::run_pipeline(p, std::move(input));
  // No pattern may merge record 1 with record 2 across the boundary.
  for (const auto& rec : out) {
    EXPECT_NE(rec.subtype == river::kSubtypePattern && rec.is_float() &&
                  rec.floats().size() == 2,
              true);
  }
}

TEST(FullPipeline, OutputStreamIsScopeWellFormed) {
  const auto clip = record_test_clip(77);
  auto pipeline = core::make_full_pipeline(test_params());
  const auto out = river::run_pipeline(
      pipeline, core::clip_to_records(clip.clip, 0, test_params().record_size));

  river::ScopeTracker tracker;
  std::size_t ensembles = 0;
  std::size_t patterns = 0;
  for (const auto& rec : out) {
    tracker.observe(rec);
    if (rec.type == RecordType::kOpenScope &&
        rec.scope_type == river::kScopeEnsemble) {
      ++ensembles;
    }
    if (rec.type == RecordType::kData && rec.subtype == river::kSubtypePattern) {
      ++patterns;
    }
  }
  EXPECT_FALSE(tracker.any_open());
  EXPECT_GE(ensembles, 2u);  // both planted songs found
  EXPECT_GT(patterns, ensembles);
}

TEST(FullPipeline, MatchesBatchFacades) {
  // The operator pipeline and the EnsembleExtractor+FeatureExtractor facades
  // must produce identical patterns for the same clip.
  const auto clip = record_test_clip(78);
  const auto params = test_params();

  auto pipeline = core::make_full_pipeline(params);
  const auto out = river::run_pipeline(
      pipeline, core::clip_to_records(clip.clip, 0, params.record_size));
  const auto pipeline_patterns = core::harvest_patterns(out);

  const core::EnsembleExtractor extractor(params);
  const core::FeatureExtractor features(params);
  const auto extraction = extractor.extract(clip.clip.samples);

  std::vector<std::vector<float>> facade_patterns;
  for (const auto& ensemble : extraction.ensembles) {
    for (auto& pat : features.patterns(ensemble.samples)) {
      facade_patterns.push_back(std::move(pat));
    }
  }

  ASSERT_EQ(pipeline_patterns.size(), facade_patterns.size());
  for (std::size_t i = 0; i < facade_patterns.size(); ++i) {
    ASSERT_EQ(pipeline_patterns[i].features.size(), facade_patterns[i].size());
    for (std::size_t f = 0; f < facade_patterns[i].size(); ++f) {
      EXPECT_NEAR(pipeline_patterns[i].features[f], facade_patterns[i][f], 1e-3F)
          << "pattern " << i << " feature " << f;
    }
  }
}

TEST(FullPipeline, EnsembleAttrsCarryProvenance) {
  const auto clip = record_test_clip(79);
  const auto params = test_params();
  river::AttrMap extra;
  extra.emplace(core::kAttrSpecies, std::string("NOCA"));

  const auto patterns = core::process_clip(clip.clip, 42, params, extra);
  ASSERT_FALSE(patterns.empty());
  for (const auto& p : patterns) {
    EXPECT_EQ(p.clip_id, 42);
    EXPECT_EQ(p.species, "NOCA");
    EXPECT_GE(p.ensemble_id, 0);
    EXPECT_GT(p.ensemble_samples, 0);
    EXPECT_EQ(p.features.size(), params.features_per_pattern());
  }
}

// ---------------------------------------------------------------------------
// One true cutter automaton: operator pipeline == StreamSession, exactly
// ---------------------------------------------------------------------------

namespace {

/// Reconstruct the ensembles from a cutter-stage record stream.
std::vector<river::Ensemble> ensembles_from_records(
    const std::vector<Record>& records) {
  std::vector<river::Ensemble> out;
  bool in_ensemble = false;
  river::Ensemble current;
  for (const auto& rec : records) {
    if (rec.type == RecordType::kOpenScope &&
        rec.scope_type == river::kScopeEnsemble) {
      in_ensemble = true;
      current.start_sample = static_cast<std::size_t>(
          rec.attr_int(core::kAttrStartSample, -1));
      current.samples.clear();
    } else if ((rec.type == RecordType::kCloseScope ||
                rec.type == RecordType::kBadCloseScope) &&
               rec.scope_type == river::kScopeEnsemble) {
      in_ensemble = false;
      out.push_back(std::move(current));
      current = {};
    } else if (in_ensemble && rec.type == RecordType::kData &&
               rec.subtype == river::kSubtypeAudio && rec.is_float()) {
      const auto f = rec.floats();
      current.samples.insert(current.samples.end(), f.begin(), f.end());
    }
  }
  return out;
}

/// Run saxanomaly -> trigger -> cutter over `xs` recordized at
/// `record_size`, and compare the resulting ensembles bit-identically
/// against a StreamSession fed the same signal.
void expect_operator_matches_session(const core::PipelineParams& params,
                                     std::span<const float> xs,
                                     std::size_t record_size) {
  dsp::WavClip clip;
  clip.sample_rate = static_cast<std::uint32_t>(params.sample_rate);
  clip.samples.assign(xs.begin(), xs.end());
  auto pipeline = core::make_extraction_pipeline(params);
  const auto records = river::run_pipeline(
      pipeline, core::clip_to_records(clip, 0, record_size));
  const auto got = ensembles_from_records(records);

  core::StreamSession session(params);
  session.push(xs);
  const auto want = session.finish();

  ASSERT_EQ(got.size(), want.size()) << "record_size=" << record_size;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].start_sample, want[i].start_sample)
        << "record_size=" << record_size << " ensemble=" << i;
    ASSERT_EQ(got[i].samples, want[i].samples)
        << "record_size=" << record_size << " ensemble=" << i;
  }
}

core::PipelineParams small_cutter_params() {
  core::PipelineParams params;
  params.anomaly = {.window = 50, .alphabet = 6, .level = 2,
                    .ma_window = 400, .frame = 8};
  params.trigger_min_baseline = 1500;
  params.trigger_hold_samples = 300;
  params.min_ensemble_samples = 600;
  params.merge_gap_samples = 2000;
  return params;
}

}  // namespace

TEST(CutterOp, BitIdenticalToStreamSessionOnStationClips) {
  // CutterOp delegates to detail::StreamCutter — the same automaton behind
  // the sessions — so the operator path must agree with StreamSession
  // sample-for-sample on real field clips, for every recordization.
  const auto params = test_params();
  for (const std::uint64_t seed : {11ULL, 29ULL}) {
    const auto clip = dynriver::testsupport::record_station_clip(
        seed, {synth::SpeciesId::kNOCA, synth::SpeciesId::kRWBL});
    core::StreamSession probe(params);
    probe.push(clip.clip.samples);
    ASSERT_FALSE(probe.finish().empty()) << "seed=" << seed;
    for (const std::size_t record_size : {std::size_t{256}, std::size_t{900},
                                          std::size_t{4096}}) {
      expect_operator_matches_session(params, clip.clip.samples, record_size);
    }
  }
}

TEST(CutterOp, BitIdenticalToStreamSessionUnderEveryRecordization) {
  // Down-scaled parameters + synthetic events: sweep record sizes down to
  // single-sample records, where every pending/merge/floor transition is
  // crossed one FIFO element at a time.
  const auto params = small_cutter_params();
  for (const unsigned seed : {5U, 13U}) {
    const auto xs = dynriver::testsupport::noise_with_bursts(
        30000, 30000 / 4, 30000 / 6, seed);
    for (const std::size_t record_size :
         {std::size_t{1}, std::size_t{7}, std::size_t{250}, std::size_t{900},
          std::size_t{30000}}) {
      expect_operator_matches_session(params, xs, record_size);
    }
  }
}

TEST(PipelineDiagram, ListsFigure5Operators) {
  const auto diagram = core::pipeline_diagram(test_params());
  for (const char* op : {"wav2rec", "saxanomaly", "trigger", "cutter", "reslice",
                         "welchwindow", "float2cplx", "dft", "cabs", "cutout",
                         "paa", "rec2vect", "MESO"}) {
    EXPECT_NE(diagram.find(op), std::string::npos) << op;
  }
}
