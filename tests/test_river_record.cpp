// Record model: payload typing, attributes, factories, equality.
#include <gtest/gtest.h>

#include "common/contracts.hpp"
#include "river/record.hpp"

namespace river = dynriver::river;
using river::Record;
using river::RecordType;

TEST(Record, DefaultIsEmptyData) {
  const Record rec;
  EXPECT_EQ(rec.type, RecordType::kData);
  EXPECT_FALSE(rec.has_payload());
  EXPECT_EQ(rec.payload_size(), 0u);
  EXPECT_EQ(rec.payload_bytes(), 0u);
}

TEST(Record, FactoriesSetHeaders) {
  const auto open = Record::open_scope(river::kScopeClip, 2);
  EXPECT_EQ(open.type, RecordType::kOpenScope);
  EXPECT_EQ(open.scope_type, river::kScopeClip);
  EXPECT_EQ(open.scope_depth, 2u);

  const auto close = Record::close_scope(river::kScopeEnsemble, 1);
  EXPECT_EQ(close.type, RecordType::kCloseScope);

  const auto bad = Record::bad_close_scope(river::kScopeClip, 0);
  EXPECT_EQ(bad.type, RecordType::kBadCloseScope);
  EXPECT_TRUE(river::is_scope_close(bad.type));
  EXPECT_TRUE(river::is_scope_close(close.type));
  EXPECT_FALSE(river::is_scope_close(open.type));
}

TEST(Record, TypedPayloadAccess) {
  auto rec = Record::data(river::kSubtypeAudio, {1.0F, 2.0F, 3.0F});
  EXPECT_TRUE(rec.is_float());
  EXPECT_EQ(rec.floats().size(), 3u);
  EXPECT_EQ(rec.payload_size(), 3u);
  EXPECT_EQ(rec.payload_bytes(), 12u);
  EXPECT_THROW((void)rec.cplx(), dynriver::ContractViolation);
  EXPECT_THROW((void)rec.bytes(), dynriver::ContractViolation);
}

TEST(Record, ComplexAndBytePayloads) {
  const auto cplx =
      Record::data_complex(river::kSubtypeComplex, {{1.0F, -1.0F}, {0.5F, 2.0F}});
  EXPECT_TRUE(cplx.is_complex());
  EXPECT_EQ(cplx.payload_bytes(), 2 * sizeof(std::complex<float>));

  const auto bytes = Record::data_bytes(river::kSubtypeRaw, {1, 2, 3, 4, 5});
  EXPECT_TRUE(bytes.is_bytes());
  EXPECT_EQ(bytes.payload_bytes(), 5u);
}

TEST(Record, AttributeTypedReads) {
  Record rec;
  rec.set_attr("rate", 21600.0);
  rec.set_attr("clip", std::int64_t{17});
  rec.set_attr("station", std::string("kbs-3"));

  EXPECT_TRUE(rec.has_attr("rate"));
  EXPECT_FALSE(rec.has_attr("missing"));
  EXPECT_DOUBLE_EQ(rec.attr_double("rate", 0.0), 21600.0);
  EXPECT_EQ(rec.attr_int("clip", -1), 17);
  EXPECT_EQ(rec.attr_string("station", ""), "kbs-3");
  // Type mismatch falls back.
  EXPECT_EQ(rec.attr_int("station", -1), -1);
  // Int promotes to double.
  EXPECT_DOUBLE_EQ(rec.attr_double("clip", 0.0), 17.0);
  // Missing key falls back.
  EXPECT_EQ(rec.attr_string("missing", "dflt"), "dflt");
}

TEST(Record, AttrOverwrite) {
  Record rec;
  rec.set_attr("k", std::int64_t{1});
  rec.set_attr("k", std::int64_t{2});
  EXPECT_EQ(rec.attr_int("k", 0), 2);
  EXPECT_EQ(rec.attrs.size(), 1u);
}

TEST(Record, StructuralEquality) {
  auto a = Record::data(river::kSubtypeAudio, {1.0F, 2.0F});
  auto b = Record::data(river::kSubtypeAudio, {1.0F, 2.0F});
  EXPECT_TRUE(a == b);
  b.set_attr("x", 1.0);
  EXPECT_FALSE(a == b);
  a.set_attr("x", 1.0);
  EXPECT_TRUE(a == b);
  a.sequence = 5;
  EXPECT_FALSE(a == b);
}

TEST(RecordType, Names) {
  EXPECT_STREQ(river::to_string(RecordType::kData), "Data");
  EXPECT_STREQ(river::to_string(RecordType::kOpenScope), "OpenScope");
  EXPECT_STREQ(river::to_string(RecordType::kCloseScope), "CloseScope");
  EXPECT_STREQ(river::to_string(RecordType::kBadCloseScope), "BadCloseScope");
}
